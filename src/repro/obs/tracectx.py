"""W3C trace context: one request id that resolves everywhere.

The endpoint parses (or mints) a `W3C traceparent
<https://www.w3.org/TR/trace-context/>`_ at the protocol boundary and
activates a :class:`TraceContext` in a :class:`contextvars.ContextVar`.
From there the id rides every layer without explicit plumbing:

* :class:`~repro.obs.trace.Span` consults the contextvar on entry, so
  engine / evaluator / store spans all carry ``trace_id`` /
  ``span_id`` / ``parent_id`` args and nest into a proper tree;
* slow-query-log records and ``endpoint.request`` /
  ``endpoint.slow_request`` events stamp the same ``trace_id``, so a
  Perfetto timeline, a ``/slowlog`` entry, the event log, and the
  ``X-Trace-Id`` response header all cross-reference;
* pool workers receive the context through the task envelope
  (:class:`repro.parallel.ObsConfig`) and re-derive a per-task child
  context from the *task key* (run id, trace file path), so a
  ``--jobs 2`` build stamps exactly the ids a serial build would.

Span-id allocation has two modes, mirroring the tracer's clocks:

* **random** (default): 8 random bytes per span, the W3C behavior;
* **deterministic**: ids are SHA-256 derivations of
  ``(trace_id, parent_id, ordinal)`` — two runs executing the same
  spans in the same order mint byte-identical ids regardless of
  process layout.  This is what keeps the ``--jobs 1/2``
  byte-identity contract intact once trace ids appear in span args.

Tail-based retention lives in :class:`TraceRing`: the endpoint buffers
every request's span tree in a per-request sink, but only *admits*
trees for slow or errored requests into the bounded ring served at
``GET /trace/<trace_id>`` — the interesting 1% is retrievable, the
boring 99% costs one discarded list.
"""

from __future__ import annotations

import contextvars
import hashlib
import os
import re
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "TraceRing",
    "activate",
    "current",
    "current_trace_id",
    "deactivate",
    "derive_span_id",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "start_trace",
    "task_scope",
]

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

_current: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, str, str]]:
    """Validate a ``traceparent`` header → ``(trace_id, span_id, flags)``.

    Returns ``None`` for anything malformed — wrong field count, short
    or non-hex ids, uppercase hex (the spec demands lowercase), the
    forbidden version ``ff``, or all-zero trace/span ids.  Callers fall
    back to minting a fresh root trace, which is the behavior the spec
    prescribes for invalid inbound context.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff":
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id, flags


def format_traceparent(ctx: "TraceContext") -> str:
    """Render a context as an outbound ``traceparent`` header value."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-{ctx.flags}"


def new_trace_id(deterministic: bool = False, seed: str = "") -> str:
    """A fresh 32-hex trace id; derived from *seed* in deterministic mode."""
    if deterministic:
        return hashlib.sha256(f"trace:{seed}".encode("utf-8")).hexdigest()[:32]
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


def derive_span_id(trace_id: str, parent_id: str, ordinal: object) -> str:
    """Deterministic 16-hex span id: a pure function of its coordinates.

    Used in logical-clock mode (and for per-task roots in pool
    workers): the id depends only on (trace, parent, position), never
    on which process minted it.
    """
    material = f"{trace_id}:{parent_id}:{ordinal}".encode("utf-8")
    return hashlib.sha256(material).hexdigest()[:16]


class TraceContext:
    """The active trace coordinates for the current logical request.

    ``span_id`` is the id of the *enclosing* span — a child span minted
    under this context records it as ``parent_id``.  ``child_id()``
    allocates ids for new children; in deterministic mode the per-
    context ordinal makes allocation a pure function of the span's
    position under its parent.

    ``sink``, when set, is a plain list that completed spans append
    their event dicts to — the endpoint's per-request span-tree buffer
    feeding :class:`TraceRing`.
    """

    __slots__ = ("trace_id", "span_id", "flags", "deterministic", "sink",
                 "_ordinal", "_lock")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        flags: str = "01",
        deterministic: bool = False,
        sink: Optional[list] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.flags = flags
        self.deterministic = deterministic
        self.sink = sink
        self._ordinal = 0
        self._lock = threading.Lock()

    def child_id(self) -> str:
        """Mint a span id for a new child of this context's span."""
        if not self.deterministic:
            return new_span_id()
        with self._lock:
            ordinal = self._ordinal
            self._ordinal += 1
        return derive_span_id(self.trace_id, self.span_id, ordinal)

    def child(self, span_id: str) -> "TraceContext":
        """A nested context whose children parent onto *span_id*."""
        return TraceContext(
            self.trace_id, span_id, flags=self.flags,
            deterministic=self.deterministic, sink=self.sink,
        )

    def derived(self, key: str) -> "TraceContext":
        """A per-task child context derived purely from *key*.

        Both the serial loop and any pool worker derive the same child
        for the same task key, which is what makes ``--jobs 1`` and
        ``--jobs 2`` traces stamp identical ids.
        """
        return self.child(derive_span_id(self.trace_id, self.span_id, key))


def start_trace(
    traceparent: Optional[str] = None,
    deterministic: bool = False,
    seed: str = "",
    sink: Optional[list] = None,
) -> TraceContext:
    """Begin a trace: continue an inbound ``traceparent`` or mint a root.

    A malformed, short, or all-zero inbound header falls back to a
    fresh root trace (per the W3C restart rule) — the caller always
    gets a usable context.
    """
    parsed = parse_traceparent(traceparent)
    if parsed is not None:
        trace_id, parent_span, flags = parsed
        ctx = TraceContext(trace_id, parent_span, flags=flags,
                           deterministic=deterministic, sink=sink)
        return ctx
    trace_id = new_trace_id(deterministic=deterministic, seed=seed)
    if deterministic:
        root_span = derive_span_id(trace_id, "", "root")
    else:
        root_span = new_span_id()
    return TraceContext(trace_id, root_span, deterministic=deterministic,
                        sink=sink)


def current() -> Optional[TraceContext]:
    """The trace context active on this thread/task, if any."""
    return _current.get()


def current_trace_id() -> Optional[str]:
    ctx = _current.get()
    return ctx.trace_id if ctx is not None else None


def activate(ctx: Optional[TraceContext]) -> "contextvars.Token":
    """Install *ctx* as the current context; returns the reset token."""
    return _current.set(ctx)


def deactivate(token: "contextvars.Token") -> None:
    _current.reset(token)


class task_scope:
    """Context manager: enter a derived per-task trace context.

    When no trace is active this is a no-op, so instrumented loops can
    wrap every unit of work unconditionally::

        with task_scope(entry.run_id):
            build_one_run(entry)

    The derived child depends only on the ambient (trace, span) pair
    and the task key — identical in a serial loop and in any pool
    worker handed the same ambient coordinates.
    """

    __slots__ = ("key", "_token")

    def __init__(self, key: str):
        self.key = key
        self._token = None

    def __enter__(self) -> Optional[TraceContext]:
        ctx = _current.get()
        if ctx is None:
            return None
        derived = ctx.derived(self.key)
        self._token = _current.set(derived)
        return derived

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None


class TraceRing:
    """Tail-sampled retention of request span trees, bounded by count.

    ``admit`` stores the full span list for one trace id (newest wins
    on the unlikely id collision), evicting the oldest admitted trace
    past ``capacity``; ``get`` answers ``None`` for ids never admitted
    *or already evicted* — the ``/trace/<id>`` 404.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("trace ring capacity must be positive")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self._admitted = 0
        self._evicted = 0

    def admit(self, trace_id: str, spans: List[dict], **meta: object) -> None:
        record = {"trace_id": trace_id, "spans": list(spans)}
        for key, value in meta.items():
            if value is not None:
                record[key] = value
        with self._lock:
            if trace_id in self._traces:
                del self._traces[trace_id]
            self._traces[trace_id] = record
            self._admitted += 1
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self._evicted += 1

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            record = self._traces.get(trace_id)
            return dict(record) if record is not None else None

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def info(self) -> Dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "current": len(self._traces),
                "admitted": self._admitted,
                "evicted": self._evicted,
            }


def span_tree(spans: List[dict]) -> List[dict]:
    """Nest a flat span list into parent→children trees.

    Spans whose ``parent_id`` is absent from the list (the request
    root, or an orphan after partial capture) become roots.  Children
    keep their recorded order.
    """
    by_id: Dict[str, dict] = {}
    nodes: List[dict] = []
    for span in spans:
        node = dict(span)
        node["children"] = []
        nodes.append(node)
        span_id = node.get("span_id")
        if span_id:
            by_id[span_id] = node
    roots: List[dict] = []
    for node in nodes:
        parent = by_id.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots
