"""Structured slow-query log: a thread-safe ring buffer of JSONL records.

The query engine records one dict per query whose wall time crosses the
configured threshold (``SlowQueryLog.threshold_ms``); the ring buffer
(``capacity`` entries, oldest evicted first) bounds memory however hot
the endpoint runs.  Records are plain JSON-serializable dicts so the
buffer round-trips losslessly through JSONL files, ``GET /slowlog``,
and the ``obs slowlog`` CLI.

Record schema (produced by
:meth:`repro.sparql.evaluator.QueryEngine.query`):

=================  =====================================================
``ts``             wall-clock UNIX timestamp when the record was made
``query_sha256``   SHA-256 of the full query text (stable join key)
``query``          query text, truncated to 200 chars for readability
``duration_ms``    end-to-end wall time of the query
``cache``          ``"hit"`` or ``"miss"`` on the result cache
``plan_digest``    deterministic EXPLAIN digest (``None`` on cache hits)
``generation``     source version / store generation at query time
``trace_id``       W3C trace id of the enclosing request, when one was
                   active — the same id the endpoint echoes as
                   ``X-Trace-Id`` and keys the ``/trace/<id>`` ring
``span_id``        id of the ``sparql.query`` span when tracing — the
                   same id appears as ``args.span_id`` in the ``--trace``
                   JSONL, so a Perfetto trace and a slow-log record
                   cross-reference
``operators``      flat per-operator profile rows: op, rows in/out,
                   wall ms, and for scans bisect probes / decode-LRU
                   hits / estimate-vs-actual error
=================  =====================================================

Admitting a record also emits an ``endpoint.slow_request`` event
(schema v1) carrying ``trace_id`` / ``plan_digest`` / ``duration_ms``
into the structured event log, so events ↔ slowlog ↔ trace rings link
by id in both directions.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from . import events as _events

__all__ = ["SlowQueryLog", "read_jsonl"]


class SlowQueryLog:
    """Bounded, thread-safe buffer of slow-query records.

    ``threshold_ms`` is the recording gate: callers ask
    :meth:`should_record` with a measured duration and only build the
    (comparatively expensive) record when it answers ``True``.  A
    threshold of ``0`` records every query — useful in tests and when
    hunting a regression.
    """

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 128):
        if capacity <= 0:
            raise ValueError("slow-query log capacity must be positive")
        self.threshold_ms = float(threshold_ms)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=self.capacity)
        self._recorded = 0
        self._evicted = 0

    def should_record(self, duration_ms: float) -> bool:
        return duration_ms >= self.threshold_ms

    def add(self, record: Dict) -> None:
        """Append one record, evicting the oldest at capacity.

        Every admission also emits an ``endpoint.slow_request`` event
        (a no-op without a configured event log), so the event stream
        carries the ids that join the slowlog entry to its trace.
        """
        with self._lock:
            if len(self._entries) == self.capacity:
                self._evicted += 1
            self._entries.append(record)
            self._recorded += 1
        _events.emit(
            "endpoint.slow_request",
            trace_id=record.get("trace_id"),
            plan_digest=record.get("plan_digest"),
            query_sha256=record.get("query_sha256"),
            duration_ms=record.get("duration_ms"),
            cache=record.get("cache"),
        )

    def entries(self) -> List[Dict]:
        """Current records, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> Dict:
        """Summary counters for ``/stats`` and ``/slowlog``."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "current": len(self._entries),
                "recorded": self._recorded,
                "evicted": self._evicted,
            }

    # -- JSONL round-trip ---------------------------------------------

    def write_jsonl(self, path) -> int:
        """Write the buffer as JSONL (one record per line); returns the
        number of records written."""
        entries = self.entries()
        lines = [json.dumps(e, sort_keys=True, separators=(",", ":")) for e in entries]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        return len(entries)


def read_jsonl(path) -> List[Dict]:
    """Parse a slow-query JSONL file back into record dicts."""
    text = Path(path).read_text(encoding="utf-8")
    records: List[Dict] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
