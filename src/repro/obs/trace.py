"""Span tracing with Chrome ``trace_event`` output.

Spans are context managers (or decorators via :meth:`Tracer.wrap`)
recording wall time, CPU time, and free-form attributes.  A tracer
accumulates complete events (``"ph": "X"``) which :meth:`Tracer.write`
emits in the Chrome JSON Array Format, one event per line, so the file
is both line-parseable and opens directly in ``chrome://tracing`` or
Perfetto::

    [
    {"args":{},"cat":"build","dur":12,"name":"execute",...},
    {"args":{},"cat":"build","dur":3,"name":"export",...},

(The trailing ``]`` is optional per the trace-event spec, which lets
writers append without seeking; :func:`read_trace` is the matching
parser.)

Two clock modes:

* **real** (default): timestamps are absolute ``time.perf_counter()``
  microseconds.  On Linux that is ``CLOCK_MONOTONIC``, which forked
  pool workers share, so events forwarded from workers land on the
  same timeline as the parent's and the merged trace renders as one
  coherent picture of the parallel run.
* **deterministic**: a logical clock that ticks once per span
  enter/exit, with pid/tid pinned to 0 and CPU time omitted.  Two runs
  executing the same spans in the same order produce byte-identical
  trace files regardless of wall time or process layout — this is how
  the test suite pins ``--jobs 1`` and ``--jobs 2`` builds to the same
  trace bytes.

Spans participate in request tracing (:mod:`repro.obs.tracectx`): when
a W3C trace context is active on the current thread, every span stamps
``trace_id`` / ``span_id`` / ``parent_id`` into its args, pushes
itself as the parent for nested spans, and — when the context carries
a *sink* — appends its completed event to that per-request buffer even
if no tracer is attached at all (how the endpoint collects span trees
for ``GET /trace/<id>`` without ``--trace``).  With no active context
nothing is stamped, so pre-existing byte-identical trace expectations
hold unchanged.

``span(tracer, ...)`` is the instrumentation-site helper: it returns a
shared no-op span when ``tracer`` is ``None`` and no recording trace
context is active, so hot paths pay one ``is None`` check plus one
contextvar read when tracing is off.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from . import tracectx as _tracectx

__all__ = ["NULL_SPAN", "Span", "Tracer", "read_trace", "span", "summarize"]


class _NullSpan:
    """Shared do-nothing span for untraced call sites."""

    __slots__ = ()

    @property
    def id(self) -> None:
        return None

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


def span(tracer: Optional["Tracer"], name: str, cat: str = "repro", **attrs: object):
    """Open a span on ``tracer``, or a shared no-op when tracing is off.

    With no tracer but an active *recording* trace context (one with a
    sink — an endpoint request), a real span is still opened against a
    record-nowhere tracer: the completed event lands only in the
    context's sink, feeding the tail-sampled ``/trace/<id>`` ring.
    """
    if tracer is None:
        ctx = _tracectx.current()
        if ctx is None or ctx.sink is None:
            return NULL_SPAN
        return Span(_SINK_TRACER, name, cat, dict(attrs))
    return tracer.span(name, cat=cat, **attrs)


class Span:
    """A single timed region; records one complete event on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_ts", "_cpu_start", "_span_id",
                 "_ctx", "_ctx_token")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._ts = 0
        self._cpu_start = 0.0
        self._span_id: object = None
        self._ctx = None
        self._ctx_token = None

    @property
    def id(self) -> int:
        """A tracer-unique id, allocated lazily on first access.

        Allocation stamps ``span_id`` into the span's args, so any
        record that stores this id (a slow-query-log entry, say) can be
        cross-referenced against the trace JSONL.  Spans that never ask
        for their id carry no ``span_id`` arg — existing byte-identical
        trace expectations are unaffected.
        """
        if self._span_id is None:
            self._span_id = self._tracer._allocate_span_id()
            self.args["span_id"] = self._span_id
        return self._span_id

    def set(self, **attrs: object) -> None:
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        ctx = _tracectx.current()
        if ctx is not None:
            # Stamp W3C coordinates and become the parent of any span
            # opened while this one is on the stack.
            span_id = ctx.child_id()
            self._span_id = span_id
            self.args["trace_id"] = ctx.trace_id
            self.args["span_id"] = span_id
            self.args["parent_id"] = ctx.span_id
            self._ctx = ctx
            self._ctx_token = _tracectx.activate(ctx.child(span_id))
        self._ts = self._tracer._now_us()
        if not self._tracer.deterministic:
            self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer._now_us()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        if tracer.deterministic:
            duration = end - self._ts
        else:
            duration = max(end - self._ts, 0)
            cpu_ms = (time.process_time() - self._cpu_start) * 1000.0
            self.args["cpu_ms"] = round(cpu_ms, 3)
        if self._ctx_token is not None:
            _tracectx.deactivate(self._ctx_token)
            self._ctx_token = None
        tracer._record(self, self._ts, duration)
        ctx = self._ctx
        if ctx is not None and ctx.sink is not None:
            detail = {
                key: value
                for key, value in self.args.items()
                if key not in ("trace_id", "span_id", "parent_id")
            }
            ctx.sink.append(
                {
                    "name": self.name,
                    "cat": self.cat,
                    "trace_id": ctx.trace_id,
                    "span_id": self._span_id,
                    "parent_id": ctx.span_id,
                    "ts_us": self._ts,
                    "dur_us": duration,
                    "args": detail,
                }
            )


class Tracer:
    """Accumulates span events; thread-safe."""

    def __init__(self, deterministic: bool = False):
        self.deterministic = deterministic
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._logical = 0
        self._next_span_id = 0

    def _allocate_span_id(self) -> int:
        with self._lock:
            self._next_span_id += 1
            return self._next_span_id

    # -- clock --------------------------------------------------------
    def _now_us(self) -> int:
        if self.deterministic:
            with self._lock:
                tick = self._logical
                self._logical += 1
                return tick
        return int(time.perf_counter() * 1_000_000)

    def reset_clock(self) -> None:
        """Rewind the logical clock (deterministic mode only).

        Called at the start of each independent unit of work (one
        corpus run, one ingest file) so the unit's span timestamps do
        not depend on which worker — or how much earlier work — came
        before it."""
        if self.deterministic:
            with self._lock:
                self._logical = 0

    # -- recording ----------------------------------------------------
    def span(self, name: str, cat: str = "repro", **attrs: object) -> Span:
        return Span(self, name, cat, dict(attrs))

    def wrap(self, name: str, cat: str = "repro") -> Callable:
        """Decorator form: trace every call of the wrapped function."""

        def decorator(fn: Callable) -> Callable:
            def wrapper(*args: object, **kwargs: object):
                with self.span(name, cat=cat):
                    return fn(*args, **kwargs)

            wrapper.__name__ = getattr(fn, "__name__", name)
            wrapper.__doc__ = fn.__doc__
            return wrapper

        return decorator

    def _record(self, span_obj: Span, ts: int, duration: int) -> None:
        if self.deterministic:
            pid = 0
            tid = 0
        else:
            pid = os.getpid()
            tid = threading.get_ident() & 0xFFFFFFFF
        event = {
            "name": span_obj.name,
            "cat": span_obj.cat,
            "ph": "X",
            "ts": ts,
            "dur": duration,
            "pid": pid,
            "tid": tid,
            "args": span_obj.args,
        }
        with self._lock:
            self._events.append(event)

    # -- merge / export -----------------------------------------------
    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    def drain(self) -> List[dict]:
        """Return accumulated events and clear the buffer (used by pool
        workers to ship their spans back with each result)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def add_events(self, events: Iterable[dict]) -> None:
        """Absorb events recorded elsewhere (a pool worker's ``drain``).

        In deterministic mode the logical clock also advances past the
        absorbed events, exactly as if the spans had been recorded
        locally — this keeps serial and merged-parallel traces
        tick-for-tick identical."""
        events = list(events)
        if not events:
            return
        with self._lock:
            self._events.extend(events)
            if self.deterministic:
                horizon = max(e["ts"] + e["dur"] + 1 for e in events)
                self._logical = max(self._logical, horizon)

    def write(self, path) -> int:
        """Write the Chrome trace file; returns the number of events.

        Events are sorted by (ts, pid, tid) so concurrently-recorded
        real-mode traces still serialize stably; deterministic-mode
        events already carry totally-ordered timestamps."""
        events = self.events()
        events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
        lines = ["["]
        for event in events:
            lines.append(json.dumps(event, sort_keys=True, separators=(",", ":")) + ",")
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
        return len(events)


class _SinkOnlyTracer(Tracer):
    """A tracer whose events vanish: spans opened purely for a request
    context's sink.  Shared process-wide — it holds no per-span state
    (the Span itself does) and its event buffer is never appended to,
    so it cannot grow with endpoint uptime."""

    def _record(self, span_obj: Span, ts: int, duration: int) -> None:
        pass


_SINK_TRACER = _SinkOnlyTracer()


def read_trace(path, warn: Optional[Callable[[str], None]] = None) -> List[dict]:
    """Parse a trace file written by :meth:`Tracer.write`.

    Also accepts a complete JSON array or plain JSONL (one object per
    line) for robustness.  Truncated or malformed lines — the tail a
    crashed writer leaves behind — are skipped with a warning instead
    of raising, so a dead run's trace is still summarizable."""
    if warn is None:
        warn = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    if text.startswith("["):
        body = text.rstrip(",")
        if not body.endswith("]"):
            body += "]"
        try:
            return json.loads(body)
        except ValueError:
            pass  # fall through to the tolerant line-by-line parse
    events = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip().rstrip(",")
        if not line or line in ("[", "]"):
            continue
        try:
            record = json.loads(line)
        except ValueError:
            warn(f"warning: skipping malformed trace line at {path}:{lineno}")
            continue
        if isinstance(record, dict):
            events.append(record)
    return events


def summarize(events: Iterable[dict]) -> List[dict]:
    """Aggregate events by (cat, name): count and total/mean/max wall µs."""
    stats: dict = {}
    for event in events:
        key = (event.get("cat", ""), event.get("name", ""))
        entry = stats.setdefault(key, {"count": 0, "total_us": 0, "max_us": 0})
        entry["count"] += 1
        duration = int(event.get("dur", 0))
        entry["total_us"] += duration
        entry["max_us"] = max(entry["max_us"], duration)
    out = []
    for (cat, name), entry in sorted(
        stats.items(), key=lambda item: -item[1]["total_us"]
    ):
        out.append(
            {
                "cat": cat,
                "name": name,
                "count": entry["count"],
                "total_ms": round(entry["total_us"] / 1000.0, 3),
                "mean_ms": round(entry["total_us"] / entry["count"] / 1000.0, 3),
                "max_ms": round(entry["max_us"] / 1000.0, 3),
            }
        )
    return out
