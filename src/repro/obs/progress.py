"""One-line progress reporting for long-running builds and ingests.

:class:`Progress` writes a single carriage-return-refreshed status line
(items done, work rate, ETA) to a stream, refreshed at most once per
``min_interval`` seconds so a million-quad ingest costs a handful of
writes, not one per item.  Live updates are **TTY-gated**: when the
stream is not an interactive terminal (piped, redirected, CI) no
carriage-return refreshes are written — but :meth:`Progress.finish`
still emits its one plain summary line (items, work, elapsed), so a
piped or CI log records completion instead of total silence.

The work rate can be fed explicitly (``update(done, work=n)``) or pulled
from an observability counter (``work_counter=`` any metric exposing
a ``value``, e.g. ``repro_ingest_quads_total``) — the counter is
snapshotted at construction so only work done *by this operation* is
rated, even though registry counters are cumulative per process.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

__all__ = ["Progress"]


def _format_duration(seconds: float) -> str:
    seconds = max(0, int(seconds))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class Progress:
    """Rate-limited, TTY-gated one-line progress reporter.

    ``enabled=None`` (the default) resolves to ``stream.isatty()``;
    pass ``True``/``False`` to force either way (tests force ``True``
    against a StringIO).
    """

    def __init__(
        self,
        label: str,
        total: Optional[int] = None,
        unit: str = "runs",
        work_unit: str = "quads",
        work_counter=None,
        stream=None,
        min_interval: float = 1.0,
        enabled: Optional[bool] = None,
    ):
        self.stream = sys.stderr if stream is None else stream
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self.label = label
        self.total = total
        self.unit = unit
        self.work_unit = work_unit
        self._work_counter = work_counter
        self._work_base = work_counter.value if work_counter is not None else 0.0
        self._min_interval = min_interval
        self._start = time.monotonic()
        self._last_emit = float("-inf")
        self._width = 0
        self.emitted = 0  # status-line writes (tests assert rate limiting)

    def _compose(self, done: int, work: Optional[float], elapsed: float) -> str:
        parts = [f"{self.label}: {done}"
                 + (f"/{self.total}" if self.total else "")
                 + f" {self.unit}"]
        if work is not None:
            rate = ""
            # A rate over a near-zero elapsed window is noise, not signal.
            if elapsed >= 0.5:
                rate = f" ({work / elapsed:,.0f}/s)"
            parts.append(f"{int(work):,} {self.work_unit}{rate}")
        if self.total and 0 < done < self.total:
            remaining = (self.total - done) * (elapsed / done)
            parts.append(f"ETA {_format_duration(remaining)}")
        return "  ".join(parts)

    def update(self, done: int, work: Optional[float] = None,
               force: bool = False) -> None:
        """Refresh the status line (at most once per ``min_interval``)."""
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self._min_interval:
            return
        self._last_emit = now
        if work is None and self._work_counter is not None:
            work = self._work_counter.value - self._work_base
        line = self._compose(done, work, now - self._start)
        # Pad over the previous line so a shrinking line leaves no tail.
        self.stream.write("\r" + line + " " * max(0, self._width - len(line)))
        self.stream.flush()
        self._width = len(line)
        self.emitted += 1

    def finish(self, done: int, work: Optional[float] = None) -> None:
        """Write the final totals (with elapsed time) and end the line.

        Emitted even when live updates are disabled (non-TTY stream): a
        piped or CI log gets exactly one plain summary line instead of
        no record of the operation at all.
        """
        if work is None and self._work_counter is not None:
            work = self._work_counter.value - self._work_base
        elapsed = time.monotonic() - self._start
        line = (self._compose(done, work, elapsed)
                + f"  in {_format_duration(elapsed)}")
        if not self.enabled:
            self.stream.write(line + "\n")
            self.stream.flush()
            self.emitted += 1
            return
        self.stream.write("\r" + line + " " * max(0, self._width - len(line)) + "\n")
        self.stream.flush()
        self._width = 0
        self.emitted += 1
