"""Cross-process metrics: mmap-backed per-process shards, folded at scrape.

The in-process registry (:mod:`repro.obs.metrics`) is exact under
threads but blind across processes: every counter a ``--jobs N`` pool
worker increments dies with the worker.  This module is the bridge —
the same idea as ``prometheus_client`` multiprocess mode, rebuilt
dependency-free on the store's segment-file idioms (explicit format
header, manifest as commit point, orphan sweep):

* Every participating process **attaches** one fixed-slot shard file in
  a shared observability directory and mirrors its registry deltas into
  it (:func:`attach` / :func:`flush`).  The shard is written lock-free
  by its single owning process; readers never block writers.
* Scrapers **aggregate**: :func:`aggregate` folds every live shard of
  the current obs generation (plus the swept residual) into one series
  map, and :func:`render_aggregated` / :func:`snapshot_aggregated`
  merge that with a local registry into one coherent Prometheus
  exposition — worker-side intern/parse counters finally appear in the
  parent's ``/metrics``.
* Dead writers are **swept**: a shard whose pid no longer exists is
  folded into ``residual.json`` exactly once (the residual records the
  swept file names, so a crash between fold and unlink cannot double
  count) and then unlinked.  A killed ``--jobs`` worker's last-flushed
  values survive into every later scrape.

On-disk layout of an observability directory::

    <obs-dir>/
      obs.json               manifest: format_version, generation
      shard-<pid>-<nonce>.shm   per-process shards (format below)
      residual.json          totals folded out of dead writers' shards
      events.jsonl[.N]       structured event log (repro.obs.events)

Shard file format (``RPSHM001``), little-endian::

    header  64 bytes   magic 8s | pid I | capacity I | used I |
                       generation I | created d | updated d | pad
    slot    256 bytes  key_len H | kind c | pad | value d @8 |
                       key bytes (utf-8 JSON) @16

A slot's key is ``[name, [[label, value]...], part]`` where ``part`` is
``""`` for a plain scalar, ``"le:<edge>"`` for one histogram bucket
(non-cumulative), or ``"sum"``/``"count"``.  The writer publishes a new
slot by writing the key bytes first and the key length last, and bumps
the header's used-count after that, so a concurrent reader never parses
a half-written key.  Value updates are single 8-byte stores.

Aggregation semantics by kind: counters (``c``) and histogram parts
(``h``) sum across shards; gauges (``g``) take the max (every process
observing a shared store reports the same quads/generation, and a
worker's stale inherited gauge can never inflate the truth).

The obs manifest's ``generation`` keys the whole directory: shards
record the generation they attached under, aggregation ignores other
generations, and :func:`reset` bumps it — so a fresh measurement epoch
never inherits stale totals.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry, _escape_label, _format_value, get_registry

__all__ = [
    "MAGIC",
    "MANIFEST_FILE",
    "RESIDUAL_FILE",
    "ShardWriter",
    "aggregate",
    "attach",
    "configure",
    "configured_dir",
    "detach",
    "flush",
    "is_attached",
    "read_shard",
    "render_aggregated",
    "reset",
    "shard_status",
    "snapshot_aggregated",
    "sweep_orphans",
    "unconfigure",
]

MAGIC = b"RPSHM001"
MANIFEST_FILE = "obs.json"
RESIDUAL_FILE = "residual.json"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sIIIIdd")  # magic, pid, capacity, used, generation, created, updated
HEADER_SIZE = 64
SLOT_SIZE = 256
_VALUE = struct.Struct("<d")
_KEY_OFFSET = 16
MAX_KEY_BYTES = SLOT_SIZE - _KEY_OFFSET

#: Default number of slots per shard (256 B each → 512 KiB, sparse).
DEFAULT_CAPACITY = 2048

# Aggregation kinds (single ASCII byte stored per slot).
KIND_COUNTER = "c"
KIND_GAUGE = "g"
KIND_HISTOGRAM = "h"

_REGISTRY_KIND = {"counter": KIND_COUNTER, "gauge": KIND_GAUGE}


class ShardError(RuntimeError):
    """Shard misuse: key too long, slot table full, bad directory."""


# -- obs-directory manifest ---------------------------------------------------


def _read_manifest(obs_dir: Path) -> Optional[Dict]:
    path = obs_dir / MANIFEST_FILE
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if manifest.get("format_version") != FORMAT_VERSION:
        return None
    return manifest


def _write_json_atomic(path: Path, payload: Dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def ensure_dir(obs_dir) -> Dict:
    """Create the obs directory + manifest if needed; return the manifest."""
    obs_dir = Path(obs_dir)
    obs_dir.mkdir(parents=True, exist_ok=True)
    manifest = _read_manifest(obs_dir)
    if manifest is None:
        manifest = {
            "format_version": FORMAT_VERSION,
            "generation": 1,
            "created_ts": round(time.time(), 3),
        }
        _write_json_atomic(obs_dir / MANIFEST_FILE, manifest)
    return manifest


def reset(obs_dir) -> int:
    """Start a fresh measurement epoch: bump the manifest generation.

    Existing shards and the residual become stale (their recorded
    generation no longer matches) and are ignored by aggregation; dead
    stale shards are deleted by the next sweep.  Returns the new
    generation.
    """
    obs_dir = Path(obs_dir)
    manifest = ensure_dir(obs_dir)
    manifest["generation"] += 1
    _write_json_atomic(obs_dir / MANIFEST_FILE, manifest)
    return manifest["generation"]


# -- shard writer (one per process) -------------------------------------------


class ShardWriter:
    """The single-process, lock-free writer side of one shard file.

    Only the owning process ever writes the file; the mmap is the
    publication mechanism (no fsync — shard contents are telemetry, not
    durability-critical, and die with the machine, not the process).
    """

    def __init__(self, obs_dir, capacity: int = DEFAULT_CAPACITY):
        obs_dir = Path(obs_dir)
        manifest = ensure_dir(obs_dir)
        self.obs_dir = obs_dir
        self.pid = os.getpid()
        self.generation = manifest["generation"]
        self.capacity = capacity
        nonce = os.urandom(4).hex()
        self.path = obs_dir / f"shard-{self.pid}-{nonce}.shm"
        size = HEADER_SIZE + capacity * SLOT_SIZE
        with open(self.path, "wb") as handle:
            handle.truncate(size)
        self._file = open(self.path, "r+b")
        self._mm = mmap.mmap(self._file.fileno(), size)
        now = time.time()
        self._created = now
        self._used = 0
        self._write_header(updated=now)
        # key bytes → (value offset, last written value): skip the 8-byte
        # store when the value did not move since the previous flush.
        self._slots: Dict[bytes, List] = {}
        self._closed = False

    def _write_header(self, updated: float) -> None:
        self._mm[0:_HEADER.size] = _HEADER.pack(
            MAGIC, self.pid, self.capacity, self._used, self.generation,
            self._created, updated,
        )

    def set(self, name: str, labels: Tuple[Tuple[str, str], ...], part: str,
            kind: str, value: float) -> None:
        """Publish one series value (absolute, since this shard attached)."""
        key = json.dumps([name, list(labels), part], separators=(",", ":"),
                         sort_keys=False).encode("utf-8")
        slot = self._slots.get(key)
        if slot is None:
            slot = [self._allocate(key, kind), None]
            self._slots[key] = slot
        if slot[1] != value:
            _VALUE.pack_into(self._mm, slot[0], float(value))
            slot[1] = value

    def _allocate(self, key: bytes, kind: str) -> int:
        if len(key) > MAX_KEY_BYTES:
            raise ShardError(f"shard series key exceeds {MAX_KEY_BYTES} bytes: {key[:80]!r}")
        if self._used >= self.capacity:
            raise ShardError(f"shard slot table full ({self.capacity} slots): {self.path}")
        base = HEADER_SIZE + self._used * SLOT_SIZE
        # Publish order: key bytes, then kind, then key_len (the reader's
        # validity gate), then the header's used count.
        self._mm[base + _KEY_OFFSET:base + _KEY_OFFSET + len(key)] = key
        self._mm[base + 2:base + 3] = kind.encode("ascii")
        struct.pack_into("<H", self._mm, base, len(key))
        self._used += 1
        self._write_header(updated=time.time())
        return base + 8

    def touch(self) -> None:
        """Refresh the header's updated timestamp (shard-age reporting)."""
        self._write_header(updated=time.time())

    def close(self, unlink: bool = False) -> None:
        """Release the mapping.  The file stays behind by default so the
        totals outlive the process (the sweep folds them in later);
        ``unlink=True`` discards them instead."""
        if self._closed:
            return
        self._closed = True
        self._mm.close()
        self._file.close()
        if unlink:
            try:
                self.path.unlink()
            except OSError:
                pass


# -- shard reader --------------------------------------------------------------


class ShardView:
    """A parsed snapshot of one shard file."""

    __slots__ = ("path", "pid", "generation", "created", "updated", "series")

    def __init__(self, path, pid, generation, created, updated, series):
        self.path = path
        self.pid = pid
        self.generation = generation
        self.created = created
        self.updated = updated
        #: {(name, labels, part): (kind, value)}
        self.series = series


def read_shard(path) -> Optional[ShardView]:
    """Parse one shard file; ``None`` if it is not a readable shard."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    if len(data) < HEADER_SIZE or data[:8] != MAGIC:
        return None
    magic, pid, capacity, used, generation, created, updated = _HEADER.unpack_from(data)
    series: Dict[Tuple[str, Tuple, str], Tuple[str, float]] = {}
    for index in range(min(used, capacity)):
        base = HEADER_SIZE + index * SLOT_SIZE
        if base + SLOT_SIZE > len(data):
            break
        key_len = struct.unpack_from("<H", data, base)[0]
        if key_len == 0 or key_len > MAX_KEY_BYTES:
            continue
        kind = chr(data[base + 2])
        (value,) = _VALUE.unpack_from(data, base + 8)
        try:
            name, labels, part = json.loads(
                data[base + _KEY_OFFSET:base + _KEY_OFFSET + key_len].decode("utf-8")
            )
        except (ValueError, UnicodeDecodeError):
            continue  # torn or corrupt slot: skip, never fail the scrape
        series[(name, tuple(tuple(p) for p in labels), part)] = (kind, value)
    return ShardView(path, pid, generation, created, updated, series)


def _iter_shard_paths(obs_dir: Path) -> Iterator[Path]:
    for path in sorted(obs_dir.glob("shard-*.shm")):
        yield path


def _pid_alive(pid: int) -> bool:
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


# -- orphan sweep ---------------------------------------------------------------


def sweep_orphans(obs_dir) -> int:
    """Fold dead writers' shards into ``residual.json``; returns the count.

    Exactly-once across crashes and concurrent sweepers: the residual
    lists every swept file name *in the same atomic write* that absorbs
    its values, already-listed shards are only unlinked, and a lock file
    serializes sweepers (a contended sweep is simply skipped — the next
    scrape retries).
    """
    obs_dir = Path(obs_dir)
    manifest = _read_manifest(obs_dir)
    if manifest is None:
        return 0
    generation = manifest["generation"]
    dead: List[ShardView] = []
    stale: List[Path] = []
    for path in _iter_shard_paths(obs_dir):
        view = read_shard(path)
        if view is None:
            continue
        if _pid_alive(view.pid):
            continue
        if view.generation != generation:
            stale.append(path)  # previous epoch: discard, never fold
        else:
            dead.append(view)
    if not dead and not stale:
        return 0
    lock_path = obs_dir / ".sweep.lock"
    try:
        lock_file = open(lock_path, "a+b")
    except OSError:
        return 0
    try:
        try:
            import fcntl

            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except (ImportError, OSError):
            return 0  # another sweeper owns this round
        residual = _read_residual(obs_dir, generation)
        swept_names = set(residual["swept"])
        series: Dict[Tuple, List] = {
            tuple(entry[:4]): [entry[4]] for entry in residual["series"]
        }

        def fold(key: Tuple, kind: str, value: float) -> None:
            slot = series.get(key)
            if slot is None:
                series[key] = [value]
            elif kind == KIND_GAUGE:
                slot[0] = max(slot[0], value)
            else:
                slot[0] += value

        to_unlink: List[Path] = list(stale)
        folded = 0
        for view in dead:
            if view.path.name not in swept_names:
                for (name, labels, part), (kind, value) in view.series.items():
                    fold((name, json.dumps(labels), part, kind), kind, value)
                swept_names.add(view.path.name)
                folded += 1
            to_unlink.append(view.path)
        if folded or stale:
            residual = {
                "format_version": FORMAT_VERSION,
                "generation": generation,
                "swept": sorted(swept_names),
                "series": sorted(
                    [name, labels_json, part, kind, slot[0]]
                    for (name, labels_json, part, kind), slot in series.items()
                ),
            }
            _write_json_atomic(obs_dir / RESIDUAL_FILE, residual)
        for path in to_unlink:
            try:
                path.unlink()
            except OSError:
                pass
        return folded
    finally:
        lock_file.close()


def _read_residual(obs_dir: Path, generation: int) -> Dict:
    path = obs_dir / RESIDUAL_FILE
    try:
        residual = json.loads(path.read_text())
    except (OSError, ValueError):
        residual = None
    if (residual is None or residual.get("format_version") != FORMAT_VERSION
            or residual.get("generation") != generation):
        return {"format_version": FORMAT_VERSION, "generation": generation,
                "swept": [], "series": []}
    return residual


# -- aggregation ----------------------------------------------------------------


def aggregate(obs_dir, exclude_pids: Tuple[int, ...] = (), sweep: bool = True):
    """Fold all current-generation shards + residual into one series map.

    Returns ``(series, shards)`` where *series* maps
    ``(name, labels, part) → (kind, value)`` and *shards* is the status
    list :func:`shard_status` would report (pid, alive, ages).
    """
    obs_dir = Path(obs_dir)
    manifest = _read_manifest(obs_dir)
    if manifest is None:
        return {}, []
    generation = manifest["generation"]
    if sweep:
        sweep_orphans(obs_dir)
    series: Dict[Tuple, List] = {}

    def fold(key: Tuple, kind: str, value: float) -> None:
        slot = series.get(key)
        if slot is None:
            series[key] = [kind, value]
        elif kind == KIND_GAUGE:
            slot[1] = max(slot[1], value)
        else:
            slot[1] += value

    residual = _read_residual(obs_dir, generation)
    for name, labels_json, part, kind, value in residual["series"]:
        labels = tuple(tuple(p) for p in json.loads(labels_json))
        fold((name, labels, part), kind, value)
    shards = []
    now = time.time()
    for path in _iter_shard_paths(obs_dir):
        view = read_shard(path)
        if view is None:
            continue
        alive = _pid_alive(view.pid)
        shards.append({
            "pid": view.pid,
            "alive": alive,
            "generation": view.generation,
            "age_s": round(max(0.0, now - view.created), 3),
            "updated_age_s": round(max(0.0, now - view.updated), 3),
            "slots": len(view.series),
            "file": view.path.name,
        })
        if view.generation != generation or view.pid in exclude_pids:
            continue
        for key, (kind, value) in view.series.items():
            fold(key, kind, value)
    return {key: tuple(slot) for key, slot in series.items()}, shards


def shard_status(obs_dir) -> List[Dict]:
    """Per-shard liveness/age report (``/stats`` and ``obs top``)."""
    _, shards = aggregate(obs_dir, sweep=False)
    return shards


# -- registry mirroring ---------------------------------------------------------


def _iter_registry_series(registry: MetricsRegistry):
    """Yield ``(name, sorted labels, part, kind, value)`` for every series.

    Reads the registry internals directly (no collector pass): collectors
    mirror *other* processes' domains (the endpoint's store ints) and
    must not leak into a worker's shard.
    """
    with registry._lock:
        metrics = [registry._metrics[name] for name in sorted(registry._metrics)]
    for metric in metrics:
        kind = metric.kind
        for child in metric._sorted_children():
            labels = tuple(sorted(zip(metric.label_names, child.label_values)))
            if kind == "histogram":
                with metric._lock:
                    counts = list(child._bucket_counts)
                    total = child._count
                    value_sum = child._sum
                for edge, count in zip(metric._buckets, counts):
                    yield (metric.name, labels, "le:" + _format_value(edge),
                           KIND_HISTOGRAM, float(count))
                yield (metric.name, labels, "sum", KIND_HISTOGRAM, value_sum)
                yield (metric.name, labels, "count", KIND_HISTOGRAM, float(total))
            else:
                yield (metric.name, labels, "", _REGISTRY_KIND[kind], child.value)


class RegistryMirror:
    """Mirrors one registry's *deltas since attach* into a shard.

    The baseline subtraction is what makes forked pool workers correct:
    a ``fork``-start worker inherits the parent's registry values, and
    without the baseline every inherited count would be double-counted
    once per worker at aggregation time.
    """

    def __init__(self, registry: MetricsRegistry, writer: ShardWriter):
        self.registry = registry
        self.writer = writer
        self._base = {
            (name, labels, part): value
            for name, labels, part, kind, value in _iter_registry_series(registry)
            if kind != KIND_GAUGE
        }
        self._written: set = set()

    def flush(self) -> None:
        writer = self.writer
        base = self._base
        written = self._written
        histograms: Dict[Tuple, List] = {}
        for name, labels, part, kind, value in _iter_registry_series(self.registry):
            key = (name, labels, part)
            if kind == KIND_HISTOGRAM:
                # Histogram parts publish as a unit (below): a touched
                # series ships its zero buckets too, so the merged
                # exposition always has the complete edge set.
                histograms.setdefault((name, labels), []).append(
                    (part, value - base.get(key, 0.0))
                )
                continue
            delta = value if kind == KIND_GAUGE else value - base.get(key, 0.0)
            if delta == 0.0 and key not in written:
                continue  # never allocate a slot for an untouched series
            written.add(key)
            writer.set(name, labels, part, kind, delta)
        for (name, labels), parts in histograms.items():
            touched = any(part == "count" and delta != 0.0 for part, delta in parts)
            if not touched and (name, labels) not in written:
                continue
            written.add((name, labels))
            for part, delta in parts:
                writer.set(name, labels, part, KIND_HISTOGRAM, delta)
        writer.touch()


# -- module-level attachment (one shard per process) ----------------------------

_state_lock = threading.Lock()
_configured_dir: Optional[Path] = None
_writer: Optional[ShardWriter] = None
_mirror: Optional[RegistryMirror] = None


def configure(obs_dir, attach_shard: bool = True) -> Path:
    """Point this process at *obs_dir* (creating it) and attach a shard."""
    global _configured_dir
    obs_dir = Path(obs_dir)
    ensure_dir(obs_dir)
    with _state_lock:
        _configured_dir = obs_dir
    if attach_shard:
        attach(obs_dir)
    return obs_dir


def configured_dir() -> Optional[Path]:
    return _configured_dir


def attach(obs_dir=None) -> ShardWriter:
    """Attach this process's shard (idempotent; fork-safe).

    After a ``fork`` the child inherits the parent's writer state; the
    pid check below discards it and opens a fresh shard, so a worker can
    never scribble on its parent's file.
    """
    global _configured_dir, _writer, _mirror
    with _state_lock:
        target = Path(obs_dir) if obs_dir is not None else _configured_dir
        if target is None:
            raise ShardError("no observability directory configured")
        if (_writer is not None and not _writer._closed
                and _writer.pid == os.getpid() and _writer.obs_dir == target):
            return _writer
        _configured_dir = target
        _writer = ShardWriter(target)
        _mirror = RegistryMirror(get_registry(), _writer)
        return _writer


def is_attached() -> bool:
    return (_writer is not None and not _writer._closed
            and _writer.pid == os.getpid())


def flush() -> bool:
    """Mirror this process's registry deltas into its shard (no-op when
    unattached); returns whether anything was attached."""
    with _state_lock:
        mirror = _mirror
        writer = _writer
    if writer is None or writer._closed or writer.pid != os.getpid():
        return False
    mirror.flush()
    return True


def detach(unlink: bool = False) -> None:
    """Close this process's shard; keep the file unless *unlink*."""
    global _writer, _mirror
    with _state_lock:
        if _writer is not None and _writer.pid == os.getpid():
            _writer.close(unlink=unlink)
        _writer = None
        _mirror = None


def unconfigure() -> None:
    """Forget the configured directory and drop the shard file (tests)."""
    global _configured_dir
    detach(unlink=True)
    with _state_lock:
        _configured_dir = None


# -- merged exposition ----------------------------------------------------------


def _edge_sort_key(edge: str) -> float:
    if edge == "+Inf":
        return float("inf")
    if edge == "-Inf":
        return float("-inf")
    try:
        return float(edge)
    except ValueError:
        return float("inf")


def _fold_into_families(families: Dict, name: str, labels: Tuple, part: str,
                        kind: str, value: float) -> None:
    if kind == KIND_HISTOGRAM:
        family = families.setdefault(name, {"kind": "histogram", "help": "", "series": {}})
        hist = family["series"].setdefault(
            labels, {"buckets": {}, "sum": 0.0, "count": 0.0}
        )
        if part == "sum":
            hist["sum"] += value
        elif part == "count":
            hist["count"] += value
        elif part.startswith("le:"):
            edge = part[3:]
            hist["buckets"][edge] = hist["buckets"].get(edge, 0.0) + value
        return
    family_kind = "counter" if kind == KIND_COUNTER else "gauge"
    family = families.setdefault(name, {"kind": family_kind, "help": "", "series": {}})
    current = family["series"].get(labels)
    if current is None:
        family["series"][labels] = value
    elif kind == KIND_GAUGE:
        family["series"][labels] = max(current, value)
    else:
        family["series"][labels] = current + value


def merged_families(obs_dir, registry: Optional[MetricsRegistry] = None):
    """One merged metric model: local registry + every foreign shard.

    When *registry* is given its full (process-lifetime) values are used
    directly and this process's own shard is excluded from the fold —
    the shard only ever holds a subset (deltas since attach) of what the
    registry already knows.
    """
    families: Dict[str, Dict] = {}
    if registry is not None:
        registry.collect()
        for name, labels, part, kind, value in _iter_registry_series(registry):
            _fold_into_families(families, name, labels, part, kind, value)
        with registry._lock:
            for name, metric in registry._metrics.items():
                if name in families:
                    families[name]["help"] = metric.help
    exclude = (os.getpid(),) if registry is not None else ()
    series, shards = aggregate(obs_dir, exclude_pids=exclude)
    for (name, labels, part), (kind, value) in series.items():
        _fold_into_families(families, name, labels, part, kind, value)
    return families, shards


def _label_str(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in labels
    ) + "}"


def render_families(families: Dict) -> str:
    """Prometheus text exposition 0.0.4 of a merged family model."""
    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for labels in sorted(family["series"]):
            value = family["series"][labels]
            if family["kind"] == "histogram":
                cumulative = 0.0
                for edge in sorted(value["buckets"], key=_edge_sort_key):
                    cumulative += value["buckets"][edge]
                    bucket_labels = labels + (("le", edge),)
                    lines.append(
                        f"{name}_bucket{_label_str(bucket_labels)} "
                        f"{_format_value(cumulative)}"
                    )
                lines.append(f"{name}_sum{_label_str(labels)} {_format_value(value['sum'])}")
                lines.append(
                    f"{name}_count{_label_str(labels)} {_format_value(value['count'])}"
                )
            else:
                lines.append(f"{name}{_label_str(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def render_aggregated(obs_dir, registry: Optional[MetricsRegistry] = None,
                      extra: str = "") -> str:
    """The cross-process ``/metrics`` body: registry + shards (+ *extra*
    pre-rendered exposition, e.g. quantile summaries)."""
    families, _ = merged_families(obs_dir, registry=registry)
    body = render_families(families)
    if extra:
        body = body + extra if body.endswith("\n") or not body else body + "\n" + extra
    return body


def snapshot_aggregated(obs_dir, registry: Optional[MetricsRegistry] = None) -> Dict:
    """JSON-friendly aggregated dump (the ``/stats`` ``metrics`` shape)."""
    families, shards = merged_families(obs_dir, registry=registry)
    out: Dict[str, Dict] = {}
    for name in sorted(families):
        family = families[name]
        samples = []
        for labels in sorted(family["series"]):
            value = family["series"][labels]
            if family["kind"] == "histogram":
                cumulative = 0.0
                buckets = {}
                for edge in sorted(value["buckets"], key=_edge_sort_key):
                    cumulative += value["buckets"][edge]
                    buckets[edge] = cumulative
                rendered = {"sum": value["sum"], "count": value["count"],
                            "buckets": buckets}
            else:
                rendered = value
            samples.append({"labels": dict(labels), "value": rendered})
        out[name] = {"type": family["kind"], "help": family["help"], "samples": samples}
    return {"metrics": out, "shards": shards}
