"""Dependency-free observability layer: metrics registry + span tracing.

``repro.obs.metrics`` holds the process-wide metrics registry (counters,
gauges, fixed-bucket histograms, Prometheus text exposition).
``repro.obs.trace`` holds the span tracer (Chrome ``trace_event``
output, deterministic logical-clock mode for byte-stable test traces).
"""

from . import metrics
from .trace import NULL_SPAN, Tracer, read_trace, span, summarize

__all__ = [
    "metrics",
    "NULL_SPAN",
    "Tracer",
    "read_trace",
    "span",
    "summarize",
]
