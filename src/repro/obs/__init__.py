"""Dependency-free observability layer: metrics, spans, slow-query log.

``repro.obs.metrics`` holds the process-wide metrics registry (counters,
gauges, fixed-bucket histograms, Prometheus text exposition).
``repro.obs.trace`` holds the span tracer (Chrome ``trace_event``
output, deterministic logical-clock mode for byte-stable test traces).
``repro.obs.slowlog`` holds the structured slow-query ring buffer the
query engine and endpoint feed (``GET /slowlog``, ``obs slowlog``).
"""

from . import metrics
from .slowlog import SlowQueryLog, read_jsonl
from .trace import NULL_SPAN, Tracer, read_trace, span, summarize

__all__ = [
    "metrics",
    "NULL_SPAN",
    "SlowQueryLog",
    "Tracer",
    "read_jsonl",
    "read_trace",
    "span",
    "summarize",
]
