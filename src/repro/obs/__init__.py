"""Dependency-free observability layer: metrics, spans, slow-query log.

``repro.obs.metrics`` holds the process-wide metrics registry (counters,
gauges, fixed-bucket histograms, Prometheus text exposition).
``repro.obs.trace`` holds the span tracer (Chrome ``trace_event``
output, deterministic logical-clock mode for byte-stable test traces).
``repro.obs.slowlog`` holds the structured slow-query ring buffer the
query engine and endpoint feed (``GET /slowlog``, ``obs slowlog``).
``repro.obs.progress`` holds the TTY-gated one-line progress reporter
long builds and ingests drive from the counters.
"""

from . import metrics
from .progress import Progress
from .slowlog import SlowQueryLog, read_jsonl
from .trace import NULL_SPAN, Tracer, read_trace, span, summarize

__all__ = [
    "metrics",
    "NULL_SPAN",
    "Progress",
    "SlowQueryLog",
    "Tracer",
    "read_jsonl",
    "read_trace",
    "span",
    "summarize",
]
