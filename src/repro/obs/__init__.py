"""Dependency-free observability layer: metrics, spans, slow-query log.

``repro.obs.metrics`` holds the process-wide metrics registry (counters,
gauges, fixed-bucket histograms, Prometheus text exposition).
``repro.obs.trace`` holds the span tracer (Chrome ``trace_event``
output, deterministic logical-clock mode for byte-stable test traces).
``repro.obs.slowlog`` holds the structured slow-query ring buffer the
query engine and endpoint feed (``GET /slowlog``, ``obs slowlog``).
``repro.obs.progress`` holds the TTY-gated one-line progress reporter
long builds and ingests drive from the counters.
``repro.obs.shm`` holds the mmap-backed shared-memory metric shards
that carry pool-worker counters across the process boundary into one
aggregated scrape.  ``repro.obs.quantiles`` holds the CKMS targeted
quantile sketches (true p50/p95/p99 per route and plan digest).
``repro.obs.events`` holds the schema-versioned, size-rotated JSONL
event log that build/ingest/compaction/spill/endpoint paths append to.
``repro.obs.tracectx`` holds the W3C trace-context plumbing — the
``traceparent`` parser, the contextvar every span stamps its
``trace_id``/``parent_id`` from, and the tail-sampled
``/trace/<id>`` ring.  ``repro.obs.profiler`` holds the always-on
statistical profiler (folded stacks + speedscope output, thread→
request attribution, overhead accounting).
"""

from . import events, metrics, profiler, quantiles, shm, tracectx
from .events import EventLog, read_events
from .profiler import StackProfiler
from .progress import Progress
from .quantiles import QuantileFamily, QuantileSketch
from .slowlog import SlowQueryLog, read_jsonl
from .trace import NULL_SPAN, Tracer, read_trace, span, summarize
from .tracectx import TraceContext, TraceRing, parse_traceparent

__all__ = [
    "events",
    "metrics",
    "profiler",
    "quantiles",
    "shm",
    "tracectx",
    "EventLog",
    "NULL_SPAN",
    "Progress",
    "QuantileFamily",
    "QuantileSketch",
    "SlowQueryLog",
    "StackProfiler",
    "TraceContext",
    "TraceRing",
    "Tracer",
    "parse_traceparent",
    "read_events",
    "read_jsonl",
    "read_trace",
    "span",
    "summarize",
]
