"""Process-wide metrics registry with Prometheus text exposition.

A deliberately small re-implementation of the Prometheus client data
model — counters, gauges, and fixed-bucket histograms, each optionally
labelled — with no third-party dependencies.  One module-level registry
(:func:`get_registry`) serves the whole process; instrumented modules
declare their metrics at import time so every series renders (at zero)
even before the first event.

Design constraints, in order:

* **Cheap when disabled.**  Every mutation starts with a single
  attribute check (``registry._enabled``); when metrics are switched
  off the call returns before touching the lock.
* **Exact under threads.**  All mutations take the owning metric's
  lock, so concurrent increments never lose updates (the endpoint's
  handler threads and the query engine share series).
* **Pull-friendly.**  Components that already keep cheap plain-int
  counters (segment probes, dictionary hits) don't pay per-op registry
  locking; instead a *collector* callback mirrors those ints into the
  registry right before each render/snapshot.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DURATION_BUCKETS",
    "MetricsError",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "render",
    "set_enabled",
    "snapshot",
    "value",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for wall-time observations in seconds.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricsError(ValueError):
    """Invalid metric declaration or use (bad name, kind clash, labels)."""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Child:
    """One concrete time series: a metric narrowed to one label vector."""

    __slots__ = ("_metric", "_label_values")

    def __init__(self, metric: "Metric", label_values: Tuple[str, ...]):
        self._metric = metric
        self._label_values = label_values

    @property
    def label_values(self) -> Tuple[str, ...]:
        return self._label_values


class CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, metric: "Metric", label_values: Tuple[str, ...]):
        super().__init__(metric, label_values)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        if not metric._registry._enabled:
            return
        if amount < 0:
            raise MetricsError("counters can only increase")
        with metric._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Set the absolute total.  Collector use only — mirrors a plain
        int counter kept outside the registry into this series."""
        metric = self._metric
        if not metric._registry._enabled:
            return
        with metric._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._metric._lock:
            return self._value


class GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, metric: "Metric", label_values: Tuple[str, ...]):
        super().__init__(metric, label_values)
        self._value = 0.0

    def set(self, value: float) -> None:
        metric = self._metric
        if not metric._registry._enabled:
            return
        with metric._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        if not metric._registry._enabled:
            return
        with metric._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._metric._lock:
            return self._value


class HistogramChild(_Child):
    __slots__ = ("_bucket_counts", "_sum", "_count")

    def __init__(self, metric: "Metric", label_values: Tuple[str, ...]):
        super().__init__(metric, label_values)
        self._bucket_counts = [0] * len(metric._buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        metric = self._metric
        if not metric._registry._enabled:
            return
        with metric._lock:
            self._sum += value
            self._count += 1
            for i, edge in enumerate(metric._buckets):
                if value <= edge:
                    self._bucket_counts[i] += 1
                    break

    def snapshot(self) -> dict:
        metric = self._metric
        with metric._lock:
            cumulative = 0
            buckets = {}
            for edge, count in zip(metric._buckets, self._bucket_counts):
                cumulative += count
                buckets[_format_value(edge)] = cumulative
            return {"sum": self._sum, "count": self._count, "buckets": buckets}


_KIND_CHILD = {
    "counter": CounterChild,
    "gauge": GaugeChild,
    "histogram": HistogramChild,
}


class Metric:
    """A named family of series sharing a kind, help string and labels."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self._registry = registry
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if kind == "histogram":
            edges = tuple(sorted(float(b) for b in (buckets or DURATION_BUCKETS)))
            if not edges:
                raise MetricsError(f"histogram {name!r} needs at least one bucket")
            if edges[-1] != math.inf:
                edges = edges + (math.inf,)
            self._buckets = edges
        else:
            self._buckets = ()
        if not label_names:
            # Materialise the unlabeled series eagerly so declared metrics
            # render (at zero) before the first event.
            self.labels()

    def labels(self, *values: object) -> _Child:
        if len(values) != len(self.label_names):
            raise MetricsError(
                f"{self.name} takes {len(self.label_names)} label value(s), "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _KIND_CHILD[self.kind](self, key)
                    self._children[key] = child
        return child

    # Convenience pass-throughs so unlabeled metrics read naturally
    # (``METRIC.inc()`` instead of ``METRIC.labels().inc()``).
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_total(self, value: float) -> None:
        self.labels().set_total(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def snapshot(self) -> dict:
        return self.labels().snapshot()

    @property
    def value(self) -> float:
        return self.labels().value

    def _sorted_children(self) -> List[_Child]:
        with self._lock:
            return [self._children[k] for k in sorted(self._children)]


class MetricsRegistry:
    """Holds every metric family for one process."""

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- configuration ------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)

    # -- declaration --------------------------------------------------
    def _get_or_create(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> Metric:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"invalid label name {label!r} on {name!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.kind != kind or metric.label_names != label_names:
                    raise MetricsError(
                        f"metric {name!r} already registered as {metric.kind} "
                        f"with labels {metric.label_names!r}"
                    )
                return metric
            metric = Metric(
                self, name, help_text, kind, label_names,
                tuple(buckets) if buckets is not None else None,
            )
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Metric:
        return self._get_or_create(name, help_text, "counter", labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Metric:
        return self._get_or_create(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Metric:
        return self._get_or_create(name, help_text, "histogram", labels, buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- collectors ---------------------------------------------------
    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> Callable:
        """Register ``fn`` to run before each render/snapshot; used to
        mirror plain-int counters kept outside the registry."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)

    # -- exposition ---------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        self.collect()
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for child in metric._sorted_children():
                label_str = self._label_str(metric.label_names, child.label_values)
                if metric.kind == "histogram":
                    snap = child.snapshot()
                    for edge, cumulative in snap["buckets"].items():
                        le = self._label_str(
                            metric.label_names + ("le",),
                            child.label_values + (edge,),
                        )
                        lines.append(f"{metric.name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{metric.name}_sum{label_str} {_format_value(snap['sum'])}"
                    )
                    lines.append(f"{metric.name}_count{label_str} {snap['count']}")
                else:
                    lines.append(
                        f"{metric.name}{label_str} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_str(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
        if not names:
            return ""
        pairs = ",".join(
            f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
        )
        return "{" + pairs + "}"

    def snapshot(self) -> dict:
        """JSON-friendly dump of every series; runs collectors first."""
        self.collect()
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        out: dict = {}
        for metric in metrics:
            samples = []
            for child in metric._sorted_children():
                labels = dict(zip(metric.label_names, child.label_values))
                if metric.kind == "histogram":
                    samples.append({"labels": labels, "value": child.snapshot()})
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out

    def value(self, name: str, labels: Optional[dict] = None) -> Optional[float]:
        """Current value of a counter/gauge series, or ``None`` if the
        metric or series doesn't exist.  Runs collectors first."""
        self.collect()
        metric = self.get(name)
        if metric is None or metric.kind == "histogram":
            return None
        key = tuple(str((labels or {}).get(n, "")) for n in metric.label_names)
        with metric._lock:
            child = metric._children.get(key)
            return child._value if child is not None else None


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_enabled(flag: bool) -> None:
    _REGISTRY.set_enabled(flag)


def counter(name: str, help_text: str = "", labels: Sequence[str] = ()) -> Metric:
    return _REGISTRY.counter(name, help_text, labels)


def gauge(name: str, help_text: str = "", labels: Sequence[str] = ()) -> Metric:
    return _REGISTRY.gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str = "",
    labels: Sequence[str] = (),
    buckets: Optional[Sequence[float]] = None,
) -> Metric:
    return _REGISTRY.histogram(name, help_text, labels, buckets)


def render() -> str:
    return _REGISTRY.render_prometheus()


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def value(name: str, labels: Optional[dict] = None) -> Optional[float]:
    return _REGISTRY.value(name, labels)
