"""SPARQL endpoint + client (the paper's Section 6 future work)."""

from .client import SparqlClient
from .server import SparqlEndpoint

__all__ = ["SparqlEndpoint", "SparqlClient"]
