"""SPARQL protocol endpoint over a corpus dataset.

Section 6 of the paper lists "providing access to the corpus via a SPARQL
endpoint and web interfaces" as future work; this module implements it as
an extension.  A :class:`SparqlEndpoint` wraps a graph or dataset with a
minimal SPARQL 1.1 Protocol surface on stdlib ``http.server``:

* ``GET /sparql?query=...`` and ``POST /sparql`` (form-encoded or
  ``application/sparql-query``) evaluate a query;
* SELECT results return the SPARQL JSON results format
  (``application/sparql-results+json``), or CSV with ``Accept: text/csv``;
* ASK results return the JSON boolean form;
* ``GET /`` returns a small service description with corpus statistics.

The server runs on a background thread (:meth:`SparqlEndpoint.start`) so
tests and examples can exercise it in-process.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from ..rdf.graph import Dataset, Graph
from ..rdf.turtle import serialize_turtle
from ..sparql.evaluator import QueryEngine
from ..sparql.results import ResultTable
from ..sparql.tokenizer import SparqlSyntaxError

__all__ = ["SparqlEndpoint"]


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to an engine via the server instance."""

    server_version = "ProvBenchSPARQL/1.0"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test output clean

    # -- protocol ------------------------------------------------------------

    def do_GET(self):
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path in ("", "/"):
            self._send_service_description()
            return
        if parsed.path != "/sparql":
            self._send_error(404, "not found: use /sparql")
            return
        params = urllib.parse.parse_qs(parsed.query)
        queries = params.get("query")
        if not queries:
            self._send_error(400, "missing 'query' parameter")
            return
        self._run_query(queries[0])

    def do_POST(self):
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path != "/sparql":
            self._send_error(404, "not found: use /sparql")
            return
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length).decode("utf-8")
        content_type = self.headers.get("Content-Type", "").split(";")[0].strip()
        if content_type == "application/sparql-query":
            query = body
        else:
            params = urllib.parse.parse_qs(body)
            queries = params.get("query")
            if not queries:
                self._send_error(400, "missing 'query' parameter")
                return
            query = queries[0]
        self._run_query(query)

    # -- internals ----------------------------------------------------------------

    def _run_query(self, query: str):
        engine: QueryEngine = self.server.engine  # type: ignore[attr-defined]
        try:
            result = engine.query(query)
        except SparqlSyntaxError as exc:
            self._send_error(400, f"malformed query: {exc}")
            return
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self._send_error(500, f"query evaluation failed: {exc}")
            return
        accept = self.headers.get("Accept", "")
        if isinstance(result, bool):
            payload = json.dumps({"head": {}, "boolean": result})
            self._send(200, "application/sparql-results+json", payload)
        elif isinstance(result, ResultTable):
            if "text/csv" in accept:
                self._send(200, "text/csv", result.to_csv())
            else:
                self._send(200, "application/sparql-results+json", result.to_json())
        elif isinstance(result, Graph):
            # CONSTRUCT / DESCRIBE results are graphs, served as Turtle.
            self._send(200, "text/turtle", serialize_turtle(result))
        else:
            self._send_error(500, "unsupported result type")

    def _send_service_description(self):
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        payload = json.dumps(
            {
                "service": "ProvBench Wf4Ever-PROV corpus SPARQL endpoint",
                "sparql": "/sparql",
                "triples": endpoint.triple_count,
                "named_graphs": endpoint.named_graph_count,
            },
            indent=2,
        )
        self._send(200, "application/json", payload)

    def _send(self, status: int, content_type: str, body: str):
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, status: int, message: str):
        self._send(status, "application/json", json.dumps({"error": message}))


class SparqlEndpoint:
    """An HTTP SPARQL endpoint over a corpus graph or dataset."""

    def __init__(self, source: Union[Graph, Dataset], host: str = "127.0.0.1", port: int = 0):
        self.engine = QueryEngine(source)
        if isinstance(source, Dataset):
            self.triple_count = len(source)
            self.named_graph_count = len(source.graph_names())
        else:
            self.triple_count = len(source)
            self.named_graph_count = 0
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.engine = self.engine  # type: ignore[attr-defined]
        self._server.endpoint = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def query_url(self) -> str:
        return f"{self.url}/sparql"

    def start(self) -> "SparqlEndpoint":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("endpoint already started")
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "SparqlEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
