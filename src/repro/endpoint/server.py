"""SPARQL protocol endpoint over a corpus dataset.

Section 6 of the paper lists "providing access to the corpus via a SPARQL
endpoint and web interfaces" as future work; this module implements it as
an extension.  A :class:`SparqlEndpoint` wraps a graph or dataset with a
minimal SPARQL 1.1 Protocol surface on stdlib ``http.server``:

* ``GET /sparql?query=...`` and ``POST /sparql`` (form-encoded or
  ``application/sparql-query``, any declared charset) evaluate a query;
* SELECT results return the SPARQL JSON results format
  (``application/sparql-results+json``), or CSV with ``Accept: text/csv``;
* ASK results return the JSON boolean form;
* ``GET /`` returns a small service description with corpus statistics;
* ``GET /stats`` exposes the query-result cache counters, the source's
  version, per-request timing, and a snapshot of the metrics registry;
* ``GET /metrics`` serves the process metrics registry in Prometheus
  text exposition format (query cache, WAL fsyncs, store cache mirrors,
  per-route/status request counters) plus CKMS quantile summaries
  (per-route request seconds, per-plan-digest query seconds); with an
  ``obs_dir`` the scrape folds in every live worker shard and swept
  orphan residual (see :mod:`repro.obs.shm`), and ``/stats`` reports
  per-process shard ages;
* ``GET /healthz`` is the liveness probe: 200 plus the store generation;
* ``GET /slowlog`` returns the structured slow-query ring buffer (enabled
  by constructing the endpoint with ``slow_query_ms``);
* ``GET /trace/<trace_id>`` returns the tail-retained span tree of one
  slow or errored request (see below);
* ``GET /debug/profile?seconds=N[&format=speedscope]`` samples the live
  process and returns collapsed stacks (or speedscope JSON).

Every request participates in W3C trace context: an inbound
``traceparent`` header is parsed (malformed → fresh root trace, per
spec) and the resulting :class:`~repro.obs.tracectx.TraceContext` is
active for the whole request, so engine/evaluator/store spans,
slow-query-log records, and ``endpoint.request`` events all stamp the
same ``trace_id``.  The id is echoed on **every** response — success
and error alike — as ``X-Trace-Id``, alongside ``X-Query-Duration-ms``.
Span trees are buffered per request and *admitted* to the bounded
:class:`~repro.obs.tracectx.TraceRing` only when the request was slow
(``trace_slow_ms``) or errored (status ≥ 400) — tail-based retention:
``GET /trace/<id>`` answers 404 once a trace is evicted or was never
admitted.

The server is a ``ThreadingHTTPServer`` sharing one
:class:`~repro.sparql.evaluator.QueryEngine` across worker threads — the
engine's result/statistics caches are lock-protected, and the endpoint's
own timing accumulators are guarded here.  Request timing is recorded at
the response choke point (:meth:`_Handler._finish_request`), so 4xx/5xx
responses count toward the ``/stats`` averages exactly like successes.

The server runs on a background thread (:meth:`SparqlEndpoint.start`) so
tests and examples can exercise it in-process.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs import profiler as _profiler
from ..obs import shm as _shm
from ..obs import tracectx as _tracectx
from ..obs.quantiles import QuantileFamily
from ..obs.slowlog import SlowQueryLog
from ..obs.trace import span as _span
from ..obs.tracectx import TraceRing
from ..store import wal as _wal  # noqa: F401  (declares the WAL metric families)
from ..rdf.graph import Dataset, Graph
from ..rdf.turtle import serialize_turtle
from ..sparql.evaluator import DEFAULT_RESULT_CACHE_SIZE, QueryEngine
from ..sparql.results import ResultTable
from ..sparql.tokenizer import SparqlSyntaxError

__all__ = ["SparqlEndpoint"]

_KNOWN_ROUTES = ("/", "/sparql", "/stats", "/metrics", "/healthz", "/slowlog",
                 "/trace", "/debug/profile")

_HTTP_REQUESTS = _metrics.counter(
    "repro_http_requests_total", "HTTP requests served", labels=("route", "status")
)
_HTTP_SECONDS = _metrics.histogram(
    "repro_http_request_seconds", "HTTP request wall time in seconds",
    labels=("route",),
)
_HTTP_INFLIGHT = _metrics.gauge(
    "repro_endpoint_inflight_requests",
    "HTTP requests currently being handled",
)

# Mirrors of the store's plain-int counters (decode LRU, dictionary
# intern/lookup, segment bisect probes).  Those ints live on the hot
# read path where per-op registry locking would be measurable, so a
# collector copies them in just before each /metrics render or
# /stats snapshot — both views read the same underlying numbers.
_STORE_DECODE_CACHE = _metrics.counter(
    "repro_store_decode_cache_total", "Store decode-LRU lookups", labels=("result",)
)
_STORE_INTERN = _metrics.counter(
    "repro_store_dictionary_intern_total",
    "Term dictionary intern operations",
    labels=("result",),
)
_STORE_LOOKUP = _metrics.counter(
    "repro_store_dictionary_lookup_total",
    "Term dictionary read-path lookups",
    labels=("result",),
)
_STORE_PROBES = _metrics.counter(
    "repro_store_segment_probes_total",
    "Segment binary-search record probes",
    labels=("segment",),
)
_STORE_QUADS = _metrics.gauge("repro_store_quads", "Quads in the attached store")
_STORE_TERMS = _metrics.gauge("repro_store_terms", "Terms in the attached store dictionary")
_STORE_GENERATION = _metrics.gauge(
    "repro_store_generation", "Compaction generation of the attached store"
)


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to an engine via the server instance."""

    server_version = "ProvBenchSPARQL/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test output clean

    # -- protocol ------------------------------------------------------------

    def do_GET(self):
        parsed = urllib.parse.urlparse(self.path)
        self._begin_request("GET", parsed.path)
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        try:
            with _span(endpoint.tracer, "http.request", cat="endpoint",
                       method="GET", route=self._route) as request_span:
                if parsed.path in ("", "/"):
                    self._send_service_description()
                elif parsed.path == "/stats":
                    self._send_stats()
                elif parsed.path == "/metrics":
                    self._send_metrics()
                elif parsed.path == "/healthz":
                    self._send_healthz()
                elif parsed.path == "/slowlog":
                    self._send_slowlog()
                elif parsed.path == "/trace" or parsed.path.startswith("/trace/"):
                    self._send_trace(parsed.path)
                elif parsed.path == "/debug/profile":
                    self._send_profile(urllib.parse.parse_qs(parsed.query))
                elif parsed.path != "/sparql":
                    self._send_error(404, "not found: use /sparql")
                else:
                    params = urllib.parse.parse_qs(parsed.query)
                    queries = params.get("query")
                    if not queries:
                        self._send_error(400, "missing 'query' parameter")
                    else:
                        self._run_query(queries[0])
                request_span.set(status=self._status)
        finally:
            self._end_trace()

    def do_POST(self):
        parsed = urllib.parse.urlparse(self.path)
        self._begin_request("POST", parsed.path)
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        try:
            with _span(endpoint.tracer, "http.request", cat="endpoint",
                       method="POST", route=self._route) as request_span:
                self._do_post(parsed)
                request_span.set(status=self._status)
        finally:
            self._end_trace()

    def _do_post(self, parsed):
        if parsed.path != "/sparql":
            self._send_error(404, "not found: use /sparql")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error(400, "malformed Content-Length header")
            return
        raw = self.rfile.read(length)
        if len(raw) != length:
            # A short read means the client hung up or lied about the
            # length — a client error, not a server failure.
            self._send_error(
                400,
                f"incomplete body: Content-Length {length}, received {len(raw)} bytes",
            )
            return
        content_type, type_params = self._parse_content_type()
        charset = type_params.get("charset", "utf-8")
        try:
            body = raw.decode(charset)
        except (LookupError, UnicodeDecodeError) as exc:
            self._send_error(400, f"cannot decode body as {charset!r}: {exc}")
            return
        if content_type == "application/sparql-query":
            query = body
        else:
            params = urllib.parse.parse_qs(body)
            queries = params.get("query")
            if not queries:
                self._send_error(400, "missing 'query' parameter")
                return
            query = queries[0]
        self._run_query(query)

    def _parse_content_type(self):
        """Split Content-Type into (media type, {param: value})."""
        header = self.headers.get("Content-Type", "")
        parts = header.split(";")
        params = {}
        for part in parts[1:]:
            name, _, value = part.partition("=")
            params[name.strip().lower()] = value.strip().strip('"')
        return parts[0].strip().lower(), params

    # -- internals ----------------------------------------------------------------

    def _begin_request(self, method: str, path: str) -> None:
        """Stamp per-request state consumed by :meth:`_finish_request`.

        Also the trace-context ingress: the inbound ``traceparent``
        header (if any, malformed tolerated) becomes the request's
        active :class:`~repro.obs.tracectx.TraceContext` with a fresh
        span sink, and the handler thread registers with the profiler
        so its stack samples attribute to this route / trace id.
        """
        self._started = time.perf_counter()
        if path == "/trace" or path.startswith("/trace/"):
            route = "/trace"
        elif path in _KNOWN_ROUTES:
            route = path
        else:
            route = "/" if path == "" else "other"
        self._route = route
        self._status: Optional[int] = None
        self._trace_headers: dict = {}
        self._admit_trace = False
        ctx = _tracectx.start_trace(self.headers.get("traceparent"), sink=[])
        self._trace_ctx = ctx
        self._ctx_token = _tracectx.activate(ctx)
        _profiler.register_thread(route, ctx.trace_id)
        _HTTP_INFLIGHT.inc()

    def _finish_request(self, status: int) -> None:
        """Record the request exactly once, whatever status it ends with.

        This is the fix for the old timing hole: error responses used to
        bypass ``_record_request`` entirely, so ``/stats`` averages only
        ever saw successful queries.  ``_send`` funnels every response —
        success and error alike — through here.  The same choke point
        stamps ``X-Trace-Id`` / ``X-Query-Duration-ms`` for every
        response and decides tail-ring admission (slow or errored).
        """
        if getattr(self, "_status", None) is not None:
            return
        self._status = status
        _HTTP_INFLIGHT.dec()
        route = getattr(self, "_route", "other")
        started = getattr(self, "_started", None)
        elapsed_s = (time.perf_counter() - started) if started is not None else 0.0
        elapsed_ms = elapsed_s * 1000.0
        _HTTP_REQUESTS.labels(route, status).inc()
        _HTTP_SECONDS.labels(route).observe(elapsed_s)
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        endpoint.request_quantiles.observe(route, elapsed_s)
        ctx = getattr(self, "_trace_ctx", None)
        trace_id = ctx.trace_id if ctx is not None else None
        if ctx is not None:
            # Error responses (4xx/5xx) carry the same headers as
            # successes: the choke point, not the happy path, stamps
            # them.  _run_query overrides the duration with its tighter
            # query-only measurement.
            self._trace_headers = {
                "X-Trace-Id": trace_id,
                "X-Query-Duration-ms": f"{elapsed_ms:.3f}",
            }
            self._elapsed_ms = elapsed_ms
            self._admit_trace = status >= 400 or elapsed_ms >= endpoint.trace_slow_ms
        _events.emit("endpoint.request", route=route, status=status,
                     duration_s=round(elapsed_s, 6), trace_id=trace_id)
        if route == "/sparql":
            endpoint._record_request(elapsed_s * 1000.0, error=status >= 400)

    def _end_trace(self) -> None:
        """Close the request's trace scope after the ``http.request``
        span has exited (so the root span is in the sink), admitting the
        span tree to the tail ring when :meth:`_finish_request` flagged
        the request slow or errored."""
        ctx = getattr(self, "_trace_ctx", None)
        if ctx is None:
            return
        self._trace_ctx = None
        _profiler.unregister_thread()
        token = getattr(self, "_ctx_token", None)
        if token is not None:
            _tracectx.deactivate(token)
            self._ctx_token = None
        if getattr(self, "_admit_trace", False) and ctx.sink:
            endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
            endpoint.trace_ring.admit(
                ctx.trace_id,
                ctx.sink,
                route=getattr(self, "_route", "other"),
                status=self._status,
                duration_ms=round(getattr(self, "_elapsed_ms", 0.0), 3),
            )

    def _run_query(self, query: str):
        engine: QueryEngine = self.server.engine  # type: ignore[attr-defined]
        started = time.perf_counter()
        try:
            result = engine.query(query)
        except SparqlSyntaxError as exc:
            self._send_error(400, f"malformed query: {exc}")
            return
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self._send_error(500, f"query evaluation failed: {exc}")
            return
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        accept = self.headers.get("Accept", "")
        extra = {"X-Query-Duration-ms": f"{elapsed_ms:.3f}"}
        if isinstance(result, bool):
            payload = json.dumps({"head": {}, "boolean": result})
            self._send(200, "application/sparql-results+json", payload, extra)
        elif isinstance(result, ResultTable):
            if "text/csv" in accept:
                self._send(200, "text/csv", result.to_csv(), extra)
            else:
                self._send(200, "application/sparql-results+json", result.to_json(), extra)
        elif isinstance(result, Graph):
            # CONSTRUCT / DESCRIBE results are graphs, served as Turtle.
            self._send(200, "text/turtle", serialize_turtle(result), extra)
        else:
            self._send_error(500, "unsupported result type")

    def _send_service_description(self):
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        payload = json.dumps(
            {
                "service": "ProvBench Wf4Ever-PROV corpus SPARQL endpoint",
                "sparql": "/sparql",
                "stats": "/stats",
                "triples": endpoint.triple_count,
                "named_graphs": endpoint.named_graph_count,
            },
            indent=2,
        )
        self._send(200, "application/json", payload)

    def _send_stats(self):
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        self._send(200, "application/json", json.dumps(endpoint.stats(), indent=2))

    def _send_metrics(self):
        # Record this request *before* rendering so the scrape that asks
        # for the counters is itself included in them.
        self._finish_request(200)
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        extra = endpoint.request_quantiles.render() + endpoint.plan_quantiles.render()
        if endpoint.obs_dir is not None:
            # Publish our own shard too, so a concurrent `obs top` (a
            # foreign reader that cannot see this registry) stays fresh.
            _shm.flush()
            # Cross-process scrape: this process's registry (full values)
            # folded with every worker shard and swept-orphan residual.
            body = _shm.render_aggregated(
                endpoint.obs_dir, registry=_metrics.get_registry(), extra=extra
            )
        else:
            body = _metrics.get_registry().render_prometheus() + extra
        self._send(200, "text/plain; version=0.0.4", body)

    def _send_slowlog(self):
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        slow_log = endpoint.slow_log
        if slow_log is None:
            payload = {"enabled": False, "entries": []}
        else:
            payload = {"enabled": True, **slow_log.info(), "entries": slow_log.entries()}
        self._send(200, "application/json", json.dumps(payload, indent=2))

    def _send_healthz(self):
        engine: QueryEngine = self.server.engine  # type: ignore[attr-defined]
        payload = json.dumps({"status": "ok", "generation": engine.source_version()})
        self._send(200, "application/json", payload)

    def _send_trace(self, path: str):
        """``GET /trace/<trace_id>``: one tail-retained span tree."""
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        trace_id = path[len("/trace/"):].strip("/") if path.startswith("/trace/") else ""
        if not trace_id:
            payload = {
                "ring": endpoint.trace_ring.info(),
                "slow_ms": endpoint.trace_slow_ms,
                "trace_ids": endpoint.trace_ring.trace_ids(),
            }
            self._send(200, "application/json", json.dumps(payload, indent=2))
            return
        record = endpoint.trace_ring.get(trace_id)
        if record is None:
            self._send_error(404, f"unknown or evicted trace id: {trace_id}")
            return
        record["tree"] = _tracectx.span_tree(record["spans"])
        self._send(200, "application/json", json.dumps(record, indent=2))

    def _send_profile(self, params):
        """``GET /debug/profile?seconds=N[&format=speedscope]``."""
        endpoint: "SparqlEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        try:
            seconds = float(params.get("seconds", ["2"])[0])
        except ValueError:
            self._send_error(400, "malformed 'seconds' parameter")
            return
        seconds = min(max(seconds, 0.05), 60.0)
        fmt = params.get("format", ["folded"])[0]
        if fmt not in ("folded", "speedscope"):
            self._send_error(400, "unknown format: use folded or speedscope")
            return
        hz = endpoint.profile_hz or _profiler.DEFAULT_HZ
        counts, snap = _profiler.profile_window(seconds, hz=hz)
        extra = {
            "X-Profile-Samples": str(snap.get("samples_kept", 0)),
            "X-Profile-Dropped": str(snap.get("samples_dropped", 0)),
            "X-Profile-Hz": f"{snap.get('hz', hz):g}",
        }
        if fmt == "speedscope":
            payload = _profiler.render_speedscope(
                counts, name=f"repro-endpoint-{seconds:g}s"
            )
            self._send(200, "application/json", json.dumps(payload), extra)
        else:
            self._send(200, "text/plain", _profiler.render_folded(counts), extra)

    def _send(self, status: int, content_type: str, body: str, extra_headers=None):
        self._finish_request(status)
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        # Trace headers stamped by _finish_request apply to every
        # response; explicit extras (a tighter query-only duration, say)
        # override them.
        headers = dict(getattr(self, "_trace_headers", None) or {})
        headers.update(extra_headers or {})
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, status: int, message: str):
        self._send(status, "application/json", json.dumps({"error": message}))


class _EndpointServer(ThreadingHTTPServer):
    # TCPServer's default backlog of 5 drops connections when many clients
    # connect at once; size it for the concurrent workloads we advertise.
    request_queue_size = 128


class SparqlEndpoint:
    """An HTTP SPARQL endpoint over a corpus graph or dataset."""

    def __init__(
        self,
        source: Union[Graph, Dataset],
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        tracer=None,
        slow_query_ms: Optional[float] = None,
        slowlog_capacity: int = 128,
        obs_dir: Optional[str] = None,
        profile_hz: Optional[float] = None,
        trace_ring_capacity: int = 64,
        trace_slow_ms: Optional[float] = None,
    ):
        self.source = source
        self.tracer = tracer
        # Tail-based trace retention: only requests slower than
        # trace_slow_ms (default: the slowlog threshold, else 100 ms) or
        # ending in an error keep their span trees, in a bounded ring.
        self.trace_ring = TraceRing(capacity=trace_ring_capacity)
        if trace_slow_ms is not None:
            self.trace_slow_ms = float(trace_slow_ms)
        elif slow_query_ms is not None:
            self.trace_slow_ms = float(slow_query_ms)
        else:
            self.trace_slow_ms = 100.0
        self.profile_hz = profile_hz
        self._profiler_started = False
        if profile_hz:
            _profiler.start(hz=profile_hz)
            self._profiler_started = True
        # Cross-process observability: with an obs_dir, /metrics folds
        # live worker shards (plus swept-orphan residuals) into the
        # scrape, /stats reports per-process shard ages, and request
        # events append to the shared JSONL log.
        self.obs_dir = obs_dir
        if obs_dir is not None:
            _shm.configure(obs_dir)
            _events.configure(obs_dir)
        # True tail latencies (CKMS sketches, not bucket-quantized):
        # per-route request seconds and per-plan-digest query seconds.
        self.request_quantiles = QuantileFamily(
            "repro_endpoint_request_seconds",
            "HTTP request wall time (CKMS targeted quantiles)",
            label="route",
        )
        self.plan_quantiles = QuantileFamily(
            "repro_query_plan_seconds",
            "Query wall time by plan digest (CKMS targeted quantiles)",
            label="plan_digest",
        )
        # Slow-query log: opt-in via threshold; 0 records every query.
        self.slow_log = (
            SlowQueryLog(threshold_ms=slow_query_ms, capacity=slowlog_capacity)
            if slow_query_ms is not None
            else None
        )
        self.engine = QueryEngine(source, cache_size=cache_size, tracer=tracer,
                                  slow_log=self.slow_log,
                                  latency_sketch=self.plan_quantiles)
        if isinstance(source, Dataset):
            self.triple_count = len(source)
            self.named_graph_count = len(source.graph_names())
        else:
            self.triple_count = len(source)
            self.named_graph_count = 0
        self._timing_lock = threading.Lock()
        self._request_count = 0
        self._error_count = 0
        self._total_ms = 0.0
        self._max_ms = 0.0
        self._server = _EndpointServer((host, port), _Handler)
        self._server.engine = self.engine  # type: ignore[attr-defined]
        self._server.endpoint = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._collector = None
        if callable(getattr(source, "store_info", None)):
            self._collector = self._make_store_collector()
            _metrics.get_registry().register_collector(self._collector)

    def _make_store_collector(self):
        """A registry collector mirroring the store's plain-int counters."""
        source = self.source

        def collect(registry) -> None:
            info = source.store_info()
            decode = info["decoded_term_cache"]
            _STORE_DECODE_CACHE.labels("hit").set_total(decode["hits"])
            _STORE_DECODE_CACHE.labels("miss").set_total(decode["misses"])
            dictionary = info["term_dictionary"]
            _STORE_INTERN.labels("hit").set_total(dictionary["intern_hits"])
            _STORE_INTERN.labels("miss").set_total(dictionary["intern_misses"])
            _STORE_LOOKUP.labels("hit").set_total(dictionary["lookup_hits"])
            _STORE_LOOKUP.labels("miss").set_total(dictionary["lookup_misses"])
            for name, probes in info["segment_probes"].items():
                _STORE_PROBES.labels(name).set_total(probes)
            _STORE_QUADS.set(info["quads"])
            _STORE_TERMS.set(info["terms"])
            _STORE_GENERATION.set(info["generation"])

        return collect

    def _record_request(self, elapsed_ms: float, error: bool = False) -> None:
        with self._timing_lock:
            self._request_count += 1
            if error:
                self._error_count += 1
            self._total_ms += elapsed_ms
            if elapsed_ms > self._max_ms:
                self._max_ms = elapsed_ms

    def stats(self) -> dict:
        """Cache + timing counters served at ``GET /stats``."""
        with self._timing_lock:
            count = self._request_count
            errors = self._error_count
            total_ms = self._total_ms
            max_ms = self._max_ms
        payload = {
            "version": self.engine.source_version(),
            "result_cache": self.engine.cache_info(),
            "requests": {
                "count": count,
                "errors": errors,
                "total_ms": round(total_ms, 3),
                "avg_ms": round(total_ms / count, 3) if count else 0.0,
                "max_ms": round(max_ms, 3),
            },
            "metrics": _metrics.snapshot(),
        }
        if self.obs_dir is not None:
            _shm.flush()
            aggregated = _shm.snapshot_aggregated(
                self.obs_dir, registry=_metrics.get_registry()
            )
            payload["metrics"] = aggregated["metrics"]
            payload["obs"] = {"dir": self.obs_dir, "shards": aggregated["shards"]}
        payload["latency_quantiles"] = {
            "requests": self.request_quantiles.snapshot(),
            "plans": self.plan_quantiles.snapshot(),
        }
        if self.slow_log is not None:
            payload["slow_queries"] = self.slow_log.info()
        payload["tracing"] = {
            "slow_ms": self.trace_slow_ms,
            "ring": self.trace_ring.info(),
        }
        active_profiler = _profiler.get_profiler()
        payload["profiler"] = (
            active_profiler.snapshot() if active_profiler is not None
            else {"running": False}
        )
        # Store-backed sources (repro.store.StoreDataset) report segment,
        # dictionary, and decoded-term-cache sizes alongside cache counters.
        store_info = getattr(self.source, "store_info", None)
        if callable(store_info):
            payload["store"] = store_info()
        return payload

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def query_url(self) -> str:
        return f"{self.url}/sparql"

    @property
    def stats_url(self) -> str:
        return f"{self.url}/stats"

    @property
    def metrics_url(self) -> str:
        return f"{self.url}/metrics"

    @property
    def healthz_url(self) -> str:
        return f"{self.url}/healthz"

    @property
    def slowlog_url(self) -> str:
        return f"{self.url}/slowlog"

    @property
    def trace_url(self) -> str:
        return f"{self.url}/trace"

    @property
    def profile_url(self) -> str:
        return f"{self.url}/debug/profile"

    def start(self) -> "SparqlEndpoint":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("endpoint already started")
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()
        if self._profiler_started:
            _profiler.stop()
            self._profiler_started = False
        if self._collector is not None:
            _metrics.get_registry().unregister_collector(self._collector)
            self._collector = None

    def __enter__(self) -> "SparqlEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
