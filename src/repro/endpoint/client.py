"""A small SPARQL protocol client for the corpus endpoint.

Speaks just enough of the SPARQL 1.1 Protocol to talk to
:class:`repro.endpoint.server.SparqlEndpoint` (and to any standard
endpoint serving the JSON results format): GET or POST queries, JSON
results decoding back into plain Python values.
"""

from __future__ import annotations

import json
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Union

__all__ = ["SparqlClient"]


class SparqlClient:
    """Client for a SPARQL endpoint URL."""

    def __init__(self, query_url: str, timeout: float = 10.0):
        self.query_url = query_url
        self.timeout = timeout

    def stats(self) -> Dict[str, Any]:
        """Fetch the endpoint's ``/stats`` counters (cache + timing).

        Only meaningful against :class:`repro.endpoint.server.SparqlEndpoint`;
        other SPARQL endpoints will 404.
        """
        base = self.query_url.rsplit("/sparql", 1)[0]
        with urllib.request.urlopen(f"{base}/stats", timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def query(self, sparql: str, method: str = "GET") -> Union[bool, List[Dict[str, Any]]]:
        """Run a query; SELECT → list of binding dicts, ASK → bool."""
        if method == "GET":
            url = f"{self.query_url}?{urllib.parse.urlencode({'query': sparql})}"
            request = urllib.request.Request(url)
        elif method == "POST":
            request = urllib.request.Request(
                self.query_url,
                data=sparql.encode("utf-8"),
                headers={"Content-Type": "application/sparql-query"},
                method="POST",
            )
        else:
            raise ValueError(f"unsupported method {method!r}")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
        return self._decode(payload)

    @staticmethod
    def _decode(payload: Dict[str, Any]) -> Union[bool, List[Dict[str, Any]]]:
        if "boolean" in payload:
            return bool(payload["boolean"])
        rows: List[Dict[str, Any]] = []
        for binding in payload.get("results", {}).get("bindings", []):
            row: Dict[str, Any] = {}
            for name, term in binding.items():
                value = term.get("value")
                datatype = term.get("datatype", "")
                if term.get("type") == "literal" and datatype.endswith("integer"):
                    row[name] = int(value)
                elif term.get("type") == "literal" and datatype.endswith(("double", "decimal")):
                    row[name] = float(value)
                else:
                    row[name] = value
            rows.append(row)
        return rows
