"""repro — reproduction of the EDBT 2013 ProvBench workflow PROV-corpus.

A self-contained implementation of *"A Workflow PROV-Corpus based on
Taverna and Wings"* (Belhajjame et al., EDBT/ICDT Workshops 2013): an RDF
substrate with a SPARQL engine, a PROV library (PROV-DM/PROV-O/PROV-N,
inference, constraints), Taverna- and Wings-like workflow systems with
their native provenance exporters, and the corpus itself — 120 workflows,
198 runs, 30 failures — plus the paper's exemplar queries, coverage
tables, and applications.

Quickstart::

    from repro import CorpusBuilder, CorpusQueries

    corpus = CorpusBuilder().build()
    queries = CorpusQueries(corpus.dataset())
    for row in queries.workflow_runs():
        print(row.run, row.start, row.end)
"""

from .corpus import (
    Corpus,
    CorpusBuilder,
    CorpusTrace,
    DOMAINS,
    StoredCorpus,
    TemplateGenerator,
    format_table1,
    load_corpus,
    table1,
    write_corpus,
)
from .coverage import CoverageReport, coverage_report, format_table2, format_table3
from .queries import CorpusQueries
from .sparql import QueryEngine

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "CorpusBuilder",
    "CorpusTrace",
    "StoredCorpus",
    "TemplateGenerator",
    "DOMAINS",
    "write_corpus",
    "load_corpus",
    "table1",
    "format_table1",
    "coverage_report",
    "CoverageReport",
    "format_table2",
    "format_table3",
    "CorpusQueries",
    "QueryEngine",
    "__version__",
]
