"""PROV term coverage analysis — the paper's Tables 2 and 3.

Scans each system's merged trace graph for the PROV-O *starting point*
terms (Table 2) and the *additional* terms (Table 3), distinguishing
three levels of support:

* ``direct`` — the term is asserted in the traces;
* ``inferred`` — not asserted, but derivable by PROV inference
  (:mod:`repro.prov.inference`); these are the paper's starred cells;
* ``absent`` — neither asserted nor inferable.

:data:`PAPER_TABLE2` / :data:`PAPER_TABLE3` encode the cells the paper
reports, so tests and the bench can check the reproduction cell-for-cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .prov.constants import ADDITIONAL_TERMS, STARTING_POINT_TERMS, ProvTerm
from .prov.inference import inferred_graph
from .rdf.graph import Graph
from .rdf.namespace import RDF

__all__ = [
    "SUPPORT_DIRECT",
    "SUPPORT_INFERRED",
    "SUPPORT_ABSENT",
    "TermCoverage",
    "CoverageReport",
    "scan_term",
    "coverage_report",
    "format_table2",
    "format_table3",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
]

SUPPORT_DIRECT = "direct"
SUPPORT_INFERRED = "inferred"
SUPPORT_ABSENT = "absent"

#: The paper's Table 2 cells: term name → (taverna, wings) assertion support.
PAPER_TABLE2: Dict[str, Tuple[str, str]] = {
    "prov:Activity": (SUPPORT_DIRECT, SUPPORT_DIRECT),
    "prov:Agent": (SUPPORT_DIRECT, SUPPORT_DIRECT),
    "prov:Entity": (SUPPORT_DIRECT, SUPPORT_DIRECT),
    "prov:actedOnBehalfOf": (SUPPORT_ABSENT, SUPPORT_ABSENT),
    "prov:endedAtTime": (SUPPORT_DIRECT, SUPPORT_ABSENT),
    "prov:startedAtTime": (SUPPORT_DIRECT, SUPPORT_ABSENT),
    "prov:used": (SUPPORT_DIRECT, SUPPORT_DIRECT),
    "prov:wasAssociatedWith": (SUPPORT_DIRECT, SUPPORT_DIRECT),
    "prov:wasAttributedTo": (SUPPORT_ABSENT, SUPPORT_DIRECT),
    "prov:wasDerivedFrom": (SUPPORT_ABSENT, SUPPORT_ABSENT),
    "prov:wasGeneratedBy": (SUPPORT_DIRECT, SUPPORT_DIRECT),
    "prov:wasInformedBy": (SUPPORT_DIRECT, SUPPORT_ABSENT),
}

#: The paper's Table 3 cells (starred = inferred).
PAPER_TABLE3: Dict[str, Tuple[str, str]] = {
    "prov:Bundle": (SUPPORT_ABSENT, SUPPORT_DIRECT),
    "prov:Plan": (SUPPORT_INFERRED, SUPPORT_DIRECT),
    "prov:wasInfluencedBy": (SUPPORT_INFERRED, SUPPORT_DIRECT),
    "prov:hadPrimarySource": (SUPPORT_ABSENT, SUPPORT_DIRECT),
    "prov:atLocation": (SUPPORT_ABSENT, SUPPORT_DIRECT),
}

#: Paper row comments, reproduced for the formatted tables.
_COMMENTS = {
    "prov:startedAtTime": "Activity start and end not recorded in Wings provenance traces",
    "prov:endedAtTime": "Same as above",
    "prov:wasAttributedTo": "No direct attribution is recorded in Taverna provenance traces",
    "prov:wasInformedBy": "Used to express the connection between sub-workflows",
    "prov:Plan": "prov:hadPlan is used in Taverna, instead of prov:Plan",
    "prov:wasInfluencedBy": (
        "No explicit influence relationship is expressed in Taverna, "
        "but only its subproperties, e.g., prov:used, etc."
    ),
}


@dataclass(frozen=True)
class TermCoverage:
    """Coverage of one PROV term by both systems."""

    term: ProvTerm
    taverna: str
    wings: str

    @property
    def support_label(self) -> str:
        """The paper's "Support by the Systems" cell text."""
        parts = []
        if self.taverna == SUPPORT_DIRECT:
            parts.append("Taverna")
        elif self.taverna == SUPPORT_INFERRED:
            parts.append("Taverna*")
        if self.wings == SUPPORT_DIRECT:
            parts.append("Wings")
        elif self.wings == SUPPORT_INFERRED:
            parts.append("Wings*")
        return " and ".join(parts) if parts else "-"

    @property
    def comment(self) -> str:
        return _COMMENTS.get(self.term.name, "")


@dataclass
class CoverageReport:
    """The full coverage analysis of a corpus."""

    starting_point: List[TermCoverage]
    additional: List[TermCoverage]

    def cell(self, term_name: str) -> Optional[TermCoverage]:
        for entry in self.starting_point + self.additional:
            if entry.term.name == term_name:
                return entry
        return None

    def matches_paper(self) -> bool:
        """True when every cell equals the paper's tables."""
        return not self.differences()

    def differences(self) -> List[str]:
        """Human-readable list of cells that deviate from the paper."""
        out: List[str] = []
        for rows, expected in ((self.starting_point, PAPER_TABLE2),
                               (self.additional, PAPER_TABLE3)):
            for entry in rows:
                want = expected[entry.term.name]
                got = (entry.taverna, entry.wings)
                # Table 2 tracks assertion only: inferred counts as absent.
                if expected is PAPER_TABLE2:
                    got = tuple(
                        SUPPORT_ABSENT if v == SUPPORT_INFERRED else v for v in got
                    )
                if got != want:
                    out.append(f"{entry.term.name}: expected {want}, measured {got}")
        return out


def scan_term(graph: Graph, term: ProvTerm) -> bool:
    """True when *term* is directly asserted in *graph*."""
    if term.is_class:
        return graph.count(None, RDF.type, term.iri) > 0
    return graph.count(None, term.iri, None) > 0


def _support(direct: Graph, inferred: Graph, term: ProvTerm) -> str:
    if scan_term(direct, term):
        return SUPPORT_DIRECT
    if scan_term(inferred, term):
        return SUPPORT_INFERRED
    return SUPPORT_ABSENT


def coverage_report(taverna_graph: Graph, wings_graph: Graph) -> CoverageReport:
    """Compute Tables 2 and 3 from each system's merged trace graph."""
    taverna_inferred = inferred_graph(taverna_graph)
    wings_inferred = inferred_graph(wings_graph)

    def rows(terms: List[ProvTerm]) -> List[TermCoverage]:
        return [
            TermCoverage(
                term,
                _support(taverna_graph, taverna_inferred, term),
                _support(wings_graph, wings_inferred, term),
            )
            for term in terms
        ]

    return CoverageReport(
        starting_point=rows(STARTING_POINT_TERMS),
        additional=rows(ADDITIONAL_TERMS),
    )


def _format_table(title: str, rows: List[TermCoverage], table2: bool) -> str:
    lines = [title, "-" * 100]
    header = f"{'PROV Terms':<26} {'Support by the Systems':<24} Comments"
    lines.append(header)
    lines.append("-" * 100)
    for entry in rows:
        if table2:
            # Table 2 reports assertion support only (no stars).
            plain = TermCoverage(
                entry.term,
                SUPPORT_ABSENT if entry.taverna == SUPPORT_INFERRED else entry.taverna,
                SUPPORT_ABSENT if entry.wings == SUPPORT_INFERRED else entry.wings,
            )
            label = plain.support_label
        else:
            label = entry.support_label
        lines.append(f"{entry.term.name:<26} {label:<24} {entry.comment}")
    return "\n".join(lines)


def format_table2(report: CoverageReport) -> str:
    """Table 2 as fixed-width console text."""
    return _format_table("Table 2: Coverage of Starting-point PROV Terms.",
                         report.starting_point, table2=True)


def format_table3(report: CoverageReport) -> str:
    """Table 3 as fixed-width console text (stars = inferred)."""
    return _format_table("Table 3: Coverage of Additional PROV Terms.",
                         report.additional, table2=False)
