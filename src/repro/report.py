"""One-shot reproduction report: every paper artifact as Markdown.

``build_report(corpus)`` regenerates Table 1, Figure 1, the Section 2
statistics, the coverage Tables 2 and 3 (with a cell-for-cell paper
comparison), the application results, and the corpus profile — the whole
reproduction in a single reviewable document.  Exposed on the CLI as
``repro-corpus report``.
"""

from __future__ import annotations

from typing import List

from .apps import DecayDetector
from .corpus import DOMAINS, Corpus, check_corpus, profile_corpus, table1
from .coverage import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    SUPPORT_ABSENT,
    SUPPORT_INFERRED,
    coverage_report,
)

__all__ = ["build_report"]


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _support_text(value: str) -> str:
    return {"direct": "asserted", "inferred": "inferred (*)", "absent": "—"}[value]


def build_report(corpus: Corpus) -> str:
    """Render the full reproduction report as Markdown."""
    stats = corpus.statistics()
    sections: List[str] = []

    sections.append(
        "# Reproduction report — A Workflow PROV-Corpus based on Taverna and Wings\n\n"
        f"Corpus build seed: **{corpus.seed}** (deterministic).\n"
    )

    # -- Table 1 -----------------------------------------------------------
    sections.append("## Table 1 — corpus fact sheet\n")
    sections.append(_md_table(
        ["Field", "Value"],
        [[row.field, row.value] for row in table1(corpus)],
    ))

    # -- Figure 1 -----------------------------------------------------------
    sections.append("\n## Figure 1 — domains of workflows\n")
    sections.append(_md_table(
        ["Domain", "Taverna", "Wings", "Total"],
        [[d.name, str(d.taverna_workflows), str(d.wings_workflows), str(d.total)]
         for d in DOMAINS]
        + [["**Total**", "**70**", "**50**", "**120**"]],
    ))

    # -- Section 2 -------------------------------------------------------------
    sections.append("\n## Section 2 — corpus creation statistics\n")
    causes = ", ".join(
        f"{count} {cause}" for cause, count in sorted(stats["failure_causes"].items())
    )
    sections.append(_md_table(
        ["Quantity", "Paper", "Measured"],
        [
            ["Workflows", "120", str(stats["workflows"])],
            ["Workflow runs", "198", str(stats["runs"])],
            ["Failed runs", "30", str(stats["failed_runs"])],
            ["Failure causes", "resource unavailability, illegal inputs, ...", causes],
            ["Corpus size", "360 MB (real payloads)",
             f"{stats['size_bytes'] / (1024 * 1024):.1f} MB ({stats['triples']} triples)"],
        ],
    ))

    # -- Tables 2 and 3 ------------------------------------------------------------
    report = coverage_report(
        corpus.system_graph("taverna"), corpus.system_graph("wings")
    )
    sections.append("\n## Table 2 — starting-point PROV term coverage\n")
    rows = []
    for entry in report.starting_point:
        expected = PAPER_TABLE2[entry.term.name]
        measured = (
            SUPPORT_ABSENT if entry.taverna == SUPPORT_INFERRED else entry.taverna,
            SUPPORT_ABSENT if entry.wings == SUPPORT_INFERRED else entry.wings,
        )
        rows.append([
            f"`{entry.term.name}`",
            _support_text(measured[0]),
            _support_text(measured[1]),
            "✓" if measured == expected else "✗ DEVIATES",
        ])
    sections.append(_md_table(["Term", "Taverna", "Wings", "Matches paper"], rows))

    sections.append("\n## Table 3 — additional PROV term coverage\n")
    rows = []
    for entry in report.additional:
        expected = PAPER_TABLE3[entry.term.name]
        measured = (entry.taverna, entry.wings)
        rows.append([
            f"`{entry.term.name}`",
            _support_text(entry.taverna),
            _support_text(entry.wings),
            "✓" if measured == expected else "✗ DEVIATES",
        ])
    sections.append(_md_table(["Term", "Taverna", "Wings", "Matches paper"], rows))
    verdict = "**identical to the paper**" if report.matches_paper() else (
        "**DEVIATIONS FOUND**: " + "; ".join(report.differences())
    )
    sections.append(f"\nCoverage verdict: {verdict}.")

    # -- Applications -------------------------------------------------------------
    sections.append("\n## Section 3 — applications\n")
    detector = DecayDetector(corpus)
    decay_reports = detector.detect_all()
    repairable = sum(
        1 for trace in corpus.failed_traces()
        if detector.repair_candidates(trace.run_id) is not None
    )
    sections.append(_md_table(
        ["Application", "Result"],
        [
            ["(i) dependencies", "lineage DAG derivable from every trace"],
            ["(ii) debugging",
             f"all {stats['failed_runs']} failed runs: responsible process + affected steps identified"],
            ["(iii) decay",
             f"{len(decay_reports)} multi-run templates — "
             f"{len(detector.decayed_templates())} decayed, "
             f"{len(detector.stable_templates())} stable; "
             f"{repairable} failed runs repairable from earlier results"],
        ],
    ))

    # -- Profile + maintenance -------------------------------------------------------
    profile = profile_corpus(corpus)
    summary = profile.summary()
    sections.append("\n## Corpus profile\n")
    sections.append(_md_table(
        ["Metric", "Value"],
        [
            ["Traces", str(summary["traces"])],
            ["Total triples", str(summary["total_triples"])],
            ["Triples per trace (median)", str(summary["triples_per_trace"]["median"])],
            ["Mean triples, Taverna traces", str(summary["mean_triples_by_system"]["taverna"])],
            ["Mean triples, Wings traces", str(summary["mean_triples_by_system"]["wings"])],
            ["Mean triples, failed traces", str(summary["failed_trace_mean_triples"])],
            ["Mean triples, successful traces", str(summary["successful_trace_mean_triples"])],
        ],
    ))
    top = ", ".join(
        f"`{e['property']}` ({e['statements']})" for e in summary["top_prov_properties"][:5]
    )
    sections.append(f"\nMost-used PROV properties: {top}.")

    maintenance = check_corpus(corpus)
    sections.append(f"\nMaintenance pass (§6): {maintenance.summary()}.")
    return "\n".join(sections) + "\n"
