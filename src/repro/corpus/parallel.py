"""Process-parallel corpus build with a deterministic merge.

The serial build threads one :class:`~repro.workflow.dataflow.SimulatedClock`
through all 198 runs: each run starts where the previous run's teardown
left off, plus a seeded idle gap.  That chain is the only cross-run
coupling — everything else (service latencies, inputs, faults) is a pure
function of the run itself — so the build parallelizes in two phases:

1. **Schedule** (parent, cheap): an execute-only pass over the plan
   resolves every run's exact start instant
   (:meth:`CorpusBuilder.plan_start_times`).  No export, no
   serialization — a few percent of total build cost.
2. **Produce** (workers): each worker owns a private engine set seeded
   identically to the parent's, seats its clock at the run's exact start
   time, re-executes the run, exports PROV, and serializes Turtle/TriG.
   Results stream back via ``imap`` in plan order.

Because a run's outcome depends only on (template, inputs, run id,
fault plan, user, clock start), every worker reproduces byte-for-byte
what the serial build would have produced at that position, and the
merged trace list is identical to a ``jobs=1`` build.

A worker failure is captured as a :class:`~repro.parallel.RemoteError`
and re-raised in the parent as the original exception class with the
failing run and template named in the message.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..obs import shm
from ..obs import tracectx as _tracectx
from ..parallel import ObsConfig, RemoteError, pool_context, resolve_jobs
from ..workflow.dataflow import SimulatedClock
from ..workflow.errors import WorkflowError

__all__ = ["build_traces_parallel", "iter_traces_parallel"]

# Per-worker state: (builder, template index, clock, taverna, wings,
# tracer).  Built once per worker by _init_worker; tasks only carry
# (entry, start).
_WORKER_STATE = None


def _init_worker(seed, start, obs: ObsConfig = ObsConfig(), scale: int = 1) -> None:
    global _WORKER_STATE
    from .builder import CorpusBuilder

    obs.attach_worker()
    builder = CorpusBuilder(seed=seed, start=start, scale=scale)
    templates = builder.generator.all_templates()
    by_id = {t.template_id: t for t in templates}
    clock = SimulatedClock(start)
    taverna, wings = builder._make_engines(clock)
    _WORKER_STATE = (builder, by_id, clock, taverna, wings, obs.make_tracer())


def _build_one(task) -> Tuple[str, object, Optional[list]]:
    """Pool task: build one run; ship the trace plus any span events.

    The worker drains its tracer per task, so each result carries
    exactly that run's spans; the parent absorbs them in plan order,
    which makes the merged trace ordering independent of which worker
    built which run.
    """
    entry, started = task
    builder, by_id, clock, taverna, wings, tracer = _WORKER_STATE
    try:
        clock.reset(started)
        if tracer is not None:
            tracer.reset_clock()
        # Same derived trace context a serial build enters for this run
        # id — worker spans stamp identical trace/span/parent ids.
        with _tracectx.task_scope(entry.run_id):
            trace = builder._trace_for(
                entry, by_id[entry.template_id], taverna, wings, tracer=tracer
            )
        # Publish this worker's counters after every task: the pool is
        # terminated (not joined) on exit, so per-task flushes are the
        # only guaranteed publication point before the orphan sweep.
        shm.flush()
        return ("ok", trace, tracer.drain() if tracer is not None else None)
    except Exception as exc:
        if tracer is not None:
            tracer.drain()
        shm.flush()
        context = f"run {entry.run_id} (template {entry.template_id}) failed in worker"
        return ("error", RemoteError.capture(exc, context), None)


def build_traces_parallel(
    builder,
    plan,
    by_id: Dict[str, object],
    jobs: Optional[int],
    tracer=None,
) -> List[object]:
    """Fan the run plan over a process pool; merge traces in plan order."""
    return list(iter_traces_parallel(builder, plan, by_id, jobs, tracer=tracer))


def iter_traces_parallel(
    builder,
    plan,
    by_id: Dict[str, object],
    jobs: Optional[int],
    tracer=None,
) -> Iterator[object]:
    """Streaming face of :func:`build_traces_parallel`.

    ``imap`` yields results in submission (= plan) order while workers
    run ahead, so the consumer sees the exact serial trace sequence with
    only the pool's in-flight chunk buffered — memory stays flat in the
    corpus size.
    """
    jobs = min(resolve_jobs(jobs), len(plan))
    starts = builder.plan_start_times(plan, by_id)
    ctx = pool_context()
    chunksize = max(1, len(plan) // (jobs * 4))
    with ctx.Pool(
        processes=jobs,
        initializer=_init_worker,
        initargs=(builder.seed, builder.start, ObsConfig.from_tracer(tracer),
                  builder.scale),
    ) as pool:
        for status, payload, events in pool.imap(
            _build_one, list(zip(plan, starts)), chunksize=chunksize
        ):
            if status == "error":
                payload.reraise(fallback=WorkflowError)
            if tracer is not None:
                tracer.reset_clock()
                tracer.add_events(events or ())
            yield payload
