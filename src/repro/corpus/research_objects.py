"""Research Object packaging of corpus workflows.

The traces of the original corpus were published inside *workflow-centric
Research Objects* (Belhajjame et al., Sepublica 2012): aggregations that
bundle a workflow definition with its provenance traces and annotations.
This module packages a corpus template the same way: an RO manifest graph
using the ``ro:`` vocabulary that aggregates the workflow resource and
every run's trace, plus annotation links from each trace to the workflow
it describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..rdf.graph import Graph
from ..rdf.namespace import DCTERMS, Namespace, RDF
from ..rdf.terms import IRI, Literal
from ..vocab import ro
from .builder import Corpus

__all__ = ["ResearchObjectManifest", "package_template", "package_corpus"]

#: Base IRI for the published Research Objects.
RO_BASE = Namespace("http://sandbox.wf4ever-project.org/rodl/ROs/")


@dataclass
class ResearchObjectManifest:
    """One packaged Research Object: its IRI, members, and manifest graph."""

    ro_iri: IRI
    template_id: str
    workflow_resource: IRI
    trace_resources: List[IRI]
    graph: Graph

    @property
    def aggregated_count(self) -> int:
        return 1 + len(self.trace_resources)


def _workflow_resource(corpus: Corpus, template_id: str) -> IRI:
    template = corpus.templates[template_id]
    if template.system == "taverna":
        from ..taverna.engine import TavernaEngine

        return TavernaEngine.workflow_iri(template)
    from ..wings.engine import WingsEngine

    return WingsEngine.template_iri(template)


def _trace_resource(ro_iri: IRI, run_id: str, rdf_format: str) -> IRI:
    extension = "ttl" if rdf_format == "turtle" else "trig"
    return IRI(f"{ro_iri.value}traces/{run_id}.prov.{extension}")


def package_template(corpus: Corpus, template_id: str) -> ResearchObjectManifest:
    """Build the RO manifest for one workflow template and its runs."""
    template = corpus.templates[template_id]
    traces = corpus.by_template(template_id)
    if not traces:
        raise KeyError(f"template {template_id!r} has no traces in this corpus")

    ro_iri = RO_BASE.term(f"{template_id}/")
    graph = Graph()
    graph.namespaces.bind("ro", ro.RO)
    graph.namespaces.bind("roex", RO_BASE)

    graph.add((ro_iri, RDF.type, ro.ResearchObject))
    graph.add((ro_iri, DCTERMS.title, Literal(f"Research Object for {template.name}")))
    graph.add((ro_iri, DCTERMS.description,
               Literal(f"{template.description} — workflow plus {len(traces)} "
                       f"provenance trace(s)")))
    graph.add((ro_iri, DCTERMS.subject, Literal(template.domain)))
    graph.add((ro_iri, DCTERMS.created, traces[0].started))

    workflow_resource = _workflow_resource(corpus, template_id)
    graph.add((ro_iri, ro.aggregates, workflow_resource))
    graph.add((workflow_resource, RDF.type, ro.Resource))

    trace_resources: List[IRI] = []
    for trace in traces:
        resource = _trace_resource(ro_iri, trace.run_id, trace.rdf_format)
        trace_resources.append(resource)
        graph.add((ro_iri, ro.aggregates, resource))
        graph.add((resource, RDF.type, ro.Resource))
        graph.add((resource, DCTERMS.created, trace.started))
        graph.add((resource, DCTERMS.format,
                   Literal("text/turtle" if trace.rdf_format == "turtle"
                           else "application/trig")))
        # The trace is an annotation *about* the workflow resource.
        annotation = IRI(f"{ro_iri.value}annotations/{trace.run_id}")
        graph.add((annotation, RDF.type, ro.AggregatedAnnotation))
        graph.add((ro_iri, ro.aggregates, annotation))
        graph.add((annotation, ro.annotatesAggregatedResource, workflow_resource))
        graph.add((annotation, DCTERMS.source, resource))

    return ResearchObjectManifest(
        ro_iri=ro_iri,
        template_id=template_id,
        workflow_resource=workflow_resource,
        trace_resources=trace_resources,
        graph=graph,
    )


def package_corpus(corpus: Corpus) -> List[ResearchObjectManifest]:
    """One Research Object per workflow template (120 in a full corpus)."""
    return [package_template(corpus, template_id)
            for template_id in sorted(corpus.templates)]
