"""Corpus maintenance: vocabulary alignment checking (Section 6).

The paper's future work includes "maintaining the corpus to keep it
aligned with possible changes in PROV-O, Research Object and OPMW
ontologies."  This module implements that maintenance pass: it scans every
trace for terms drawn from the corpus's namespaces and checks them against
a registry of known vocabulary terms, so that when a vocabulary evolves
(terms renamed, deprecated, removed) the misaligned traces are found
mechanically.

It also performs corpus-level hygiene checks a maintainer would run before
publishing a release: every run has an associated agent, every execution
artifact participates in at least one relation, and every trace declares
the run resource its filename promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..prov.constants import PROV_CLASSES, PROV_PROPERTIES
from ..rdf.graph import Graph
from ..rdf.namespace import OPMW, PROV, RDF, WFDESC, WFPROV
from ..rdf.terms import IRI
from .builder import Corpus

__all__ = ["MaintenanceIssue", "MaintenanceReport", "check_corpus", "KNOWN_TERMS"]

#: Additional PROV-O terms the corpus legitimately uses beyond the model map.
_PROV_EXTRA = {
    "qualifiedUsage", "qualifiedGeneration", "qualifiedAssociation",
    "entity", "activity", "agent", "atTime", "hadRole",
    "Usage", "Generation", "Association", "Influence", "Bundle", "Plan",
    "Person", "SoftwareAgent", "Organization", "Collection", "Entity",
    "Activity", "Agent", "Location", "Role", "specializationOf",
    "alternateOf", "wasStartedBy", "wasEndedBy",
}

_WFPROV_TERMS = {
    "WorkflowRun", "ProcessRun", "Artifact", "WorkflowEngine",
    "usedInput", "wasOutputFrom", "wasPartOfWorkflowRun", "wasEnactedBy",
    "describedByProcess", "describedByWorkflow", "describedByParameter",
}

_WFDESC_TERMS = {
    "Workflow", "Process", "Parameter", "Input", "Output", "DataLink",
    "hasSubProcess", "hasInput", "hasOutput", "hasDataLink",
    "hasSource", "hasSink",
}

_OPMW_TERMS = {
    "WorkflowTemplate", "WorkflowTemplateProcess", "WorkflowTemplateArtifact",
    "ParameterVariable", "DataVariable", "WorkflowExecutionAccount",
    "WorkflowExecutionProcess", "WorkflowExecutionArtifact",
    "correspondsToTemplate", "correspondsToTemplateProcess",
    "correspondsToTemplateArtifact", "isGeneratedBy", "uses",
    "isStepOfTemplate", "isVariableOfTemplate", "executedInWorkflowSystem",
    "hasExecutableComponent", "hasStatus", "overallStartTime",
    "overallEndTime", "hasSize", "hasLocation",
}


def _known_terms() -> Dict[str, Set[str]]:
    prov_terms = set(_PROV_EXTRA)
    prov_terms.update(iri.local_name for iri in PROV_CLASSES.values())
    prov_terms.update(iri.local_name for iri in PROV_PROPERTIES.values())
    return {
        PROV.base: prov_terms,
        WFPROV.base: set(_WFPROV_TERMS),
        WFDESC.base: set(_WFDESC_TERMS),
        OPMW.base: set(_OPMW_TERMS),
    }


#: namespace base → the local names the current vocabulary versions define.
KNOWN_TERMS: Dict[str, Set[str]] = _known_terms()


@dataclass(frozen=True)
class MaintenanceIssue:
    kind: str  # unknown-term | missing-agent | orphan-artifact
    trace_run_id: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.trace_run_id}: {self.detail}"


@dataclass
class MaintenanceReport:
    issues: List[MaintenanceIssue] = field(default_factory=list)
    traces_checked: int = 0
    terms_seen: Dict[str, int] = field(default_factory=dict)

    @property
    def aligned(self) -> bool:
        return not self.issues

    def by_kind(self) -> Dict[str, List[MaintenanceIssue]]:
        grouped: Dict[str, List[MaintenanceIssue]] = {}
        for issue in self.issues:
            grouped.setdefault(issue.kind, []).append(issue)
        return grouped

    def summary(self) -> str:
        if self.aligned:
            return (
                f"corpus aligned: {self.traces_checked} traces, "
                f"{len(self.terms_seen)} distinct vocabulary terms, no issues"
            )
        kinds = ", ".join(f"{kind}: {len(items)}" for kind, items in sorted(self.by_kind().items()))
        return f"corpus has {len(self.issues)} maintenance issues ({kinds})"


def _vocabulary_terms(graph: Graph) -> Set[IRI]:
    """Every class/property IRI the graph draws from tracked namespaces."""
    terms: Set[IRI] = set()
    for predicate in graph.predicates():
        terms.add(predicate)
    for t in graph.triples(None, RDF.type, None):
        if isinstance(t.object, IRI):
            terms.add(t.object)
    return {
        term for term in terms
        if any(term.value.startswith(base) for base in KNOWN_TERMS)
    }


def check_trace(graph: Graph, run_id: str, report: MaintenanceReport,
                failed: bool = False) -> None:
    """Run all per-trace checks, appending issues to *report*.

    *failed* marks traces of failed runs: their provenance is deliberately
    incomplete (the paper keeps them for exactly that property), so the
    orphan-artifact check — an exported input whose consuming step never
    executed — does not apply to them.
    """
    # 1. vocabulary alignment
    for term in sorted(_vocabulary_terms(graph), key=lambda t: t.value):
        report.terms_seen[term.value] = report.terms_seen.get(term.value, 0) + 1
        base = next(b for b in KNOWN_TERMS if term.value.startswith(b))
        local = term.value[len(base):]
        if local not in KNOWN_TERMS[base]:
            report.issues.append(
                MaintenanceIssue("unknown-term", run_id,
                                 f"{term.value} is not defined by the current vocabulary")
            )
    # 2. every run/account mentions an agent
    has_agent = (
        graph.count(None, PROV.wasAssociatedWith, None) > 0
        or graph.count(None, PROV.wasAttributedTo, None) > 0
    )
    if not has_agent:
        report.issues.append(
            MaintenanceIssue("missing-agent", run_id, "no association or attribution recorded")
        )
    # 3. no orphan execution artifacts (neither used nor generated) —
    #    only meaningful for successful runs (see docstring).
    if failed:
        return
    artifact_types = (WFPROV.Artifact, OPMW.WorkflowExecutionArtifact)
    for artifact_type in artifact_types:
        for artifact in graph.subjects(RDF.type, artifact_type):
            used = graph.count(None, PROV.used, artifact) > 0
            generated = graph.count(artifact, PROV.wasGeneratedBy, None) > 0
            member = graph.count(None, PROV.hadMember, artifact) > 0
            if not used and not generated and not member:
                report.issues.append(
                    MaintenanceIssue("orphan-artifact", run_id,
                                     f"{artifact.value} is neither used, generated, "
                                     "nor a collection member")
                )


def check_corpus(corpus: Corpus) -> MaintenanceReport:
    """Run the maintenance pass over every trace of a built corpus."""
    report = MaintenanceReport()
    for trace in corpus.traces:
        check_trace(trace.graph(), trace.run_id, report, failed=trace.failed)
        report.traces_checked += 1
    return report
