"""Corpus construction: plan, execute, and export all 198 runs.

Reproduces Section 2 of the paper ("Corpus creation setup"):

* 120 workflows, each "executed at least one time";
* 198 runs in total — 39 templates are designated *multi-run* (3 runs
  each) for the decay studies, the remaining 81 run once
  (81 + 39 × 3 = 198);
* 30 runs fail, with the paper's cause mix — 14 third-party resource
  unavailability, 10 illegal input values, 6 service timeouts — injected
  deterministically at a chosen step;
* runs are spread over simulated months (decay is observed "over time");
* every run's provenance is exported with its system's native plugin
  conventions: Taverna → Turtle (PROV-O + wfprov + wfdesc),
  Wings → TriG (PROV-O + OPMW, account bundles as named graphs).

Everything derives from the integer seed (default 2013 — the paper's
year), so two builds produce byte-identical corpora.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..prov.model import ProvDocument
from ..prov.rdf_io import to_dataset, to_graph
from ..rdf.graph import Dataset, Graph
from ..rdf.trig import serialize_trig
from ..rdf.turtle import serialize_turtle
from ..taverna import TavernaEngine
from ..taverna import export_run as taverna_export
from ..taverna import export_template_description
from ..wings import WingsEngine
from ..wings import export_run as wings_export
from ..wings import export_template
from ..workflow.dataflow import RunResult, SimulatedClock
from ..workflow.errors import FAILURE_CAUSES
from ..workflow.model import WorkflowTemplate
from ..workflow.services import FaultPlan
from .domains import DOMAINS, domain_by_slug
from .generator import TemplateGenerator

__all__ = ["RunPlanEntry", "CorpusTrace", "Corpus", "CorpusBuilder"]

#: Paper constants (Section 2).
TOTAL_RUNS = 198
FAILED_RUNS = 30
FAILURE_MIX = {"resource-unavailable": 14, "illegal-input-value": 10, "service-timeout": 6}
MULTI_RUN_TEMPLATES = 39
RUNS_PER_MULTI_TEMPLATE = 3

TAVERNA_USERS = ("soiland-reyes", "kbelhajjame", "palper", "jzhao")
WINGS_USERS = ("dgarijo", "agarrido", "ocorcho", "vratnakar")


@dataclass(frozen=True)
class RunPlanEntry:
    """One planned execution."""

    run_id: str
    template_id: str
    sequence: int  # 1-based run number for this template
    variant: int  # input variant (decay templates drift across sequences)
    user: str
    fault_step: Optional[str] = None
    fault_cause: Optional[str] = None

    @property
    def will_fail(self) -> bool:
        return self.fault_step is not None


@dataclass
class CorpusTrace:
    """One exported provenance trace plus its run metadata."""

    run_id: str
    system: str
    domain: str
    template_id: str
    template_name: str
    status: str
    started: _dt.datetime
    ended: Optional[_dt.datetime]
    user: str
    document: ProvDocument
    text: str  # serialized RDF (Turtle for Taverna, TriG for Wings)
    rdf_format: str  # "turtle" | "trig"
    failed_step: Optional[str] = None
    failure_cause: Optional[str] = None
    result: Optional[RunResult] = None

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))

    def graph(self) -> Graph:
        """The trace as a single merged RDF graph."""
        return to_graph(self.document)

    def dataset(self) -> Dataset:
        """The trace as a dataset (bundles as named graphs)."""
        return to_dataset(self.document)


class Corpus:
    """The built corpus: 120 templates, 198 traces, and query surfaces."""

    def __init__(
        self,
        seed: int,
        templates: Dict[str, WorkflowTemplate],
        traces: List[CorpusTrace],
        plan: List[RunPlanEntry],
        generator: TemplateGenerator,
    ):
        self.seed = seed
        self.templates = templates
        self.traces = traces
        self.plan = plan
        self.generator = generator
        self._merged: Optional[Dataset] = None
        self._system_graphs: Dict[str, Graph] = {}

    # -- selection -------------------------------------------------------------

    def by_system(self, system: str) -> List[CorpusTrace]:
        return [t for t in self.traces if t.system == system]

    def by_template(self, template_id: str) -> List[CorpusTrace]:
        return [t for t in self.traces if t.template_id == template_id]

    def by_domain(self, domain_slug: str) -> List[CorpusTrace]:
        return [t for t in self.traces if t.domain == domain_slug]

    def failed_traces(self) -> List[CorpusTrace]:
        return [t for t in self.traces if t.failed]

    def trace(self, run_id: str) -> CorpusTrace:
        for t in self.traces:
            if t.run_id == run_id:
                return t
        raise KeyError(f"no trace for run {run_id!r}")

    def multi_run_templates(self) -> List[str]:
        """Template ids with more than one run (the decay-study set)."""
        counts: Dict[str, int] = {}
        for trace in self.traces:
            counts[trace.template_id] = counts.get(trace.template_id, 0) + 1
        return sorted(tid for tid, n in counts.items() if n > 1)

    # -- query surfaces -----------------------------------------------------------

    def dataset(self) -> Dataset:
        """The whole corpus as one dataset (Wings bundles as named graphs)."""
        if self._merged is None:
            merged = Dataset()
            for trace in self.traces:
                trace_ds = trace.dataset()
                merged.default.add_all(trace_ds.default)
                for name in trace_ds.graph_names():
                    merged.graph(name).add_all(trace_ds.graph(name))
                for prefix, base in trace_ds.namespaces.namespaces():
                    merged.namespaces.bind(prefix, base, replace=False)
            self._merged = merged
        return self._merged

    def system_graph(self, system: str) -> Graph:
        """All of one system's traces merged into a single graph."""
        if system not in self._system_graphs:
            merged = Graph()
            for trace in self.by_system(system):
                merged.add_all(trace.graph())
            self._system_graphs[system] = merged
        return self._system_graphs[system]

    # -- statistics ------------------------------------------------------------------

    def total_size_bytes(self) -> int:
        return sum(t.size_bytes for t in self.traces)

    def statistics(self) -> Dict[str, object]:
        failed = self.failed_traces()
        causes: Dict[str, int] = {}
        for trace in failed:
            causes[trace.failure_cause] = causes.get(trace.failure_cause, 0) + 1
        return {
            "workflows": len(self.templates),
            "taverna_workflows": sum(1 for t in self.templates.values() if t.system == "taverna"),
            "wings_workflows": sum(1 for t in self.templates.values() if t.system == "wings"),
            "runs": len(self.traces),
            "taverna_runs": len(self.by_system("taverna")),
            "wings_runs": len(self.by_system("wings")),
            "failed_runs": len(failed),
            "failure_causes": causes,
            "domains": len(DOMAINS),
            "size_bytes": self.total_size_bytes(),
            "triples": sum(len(t.graph()) for t in self.traces),
        }

    def domain_histogram(self) -> List[Tuple[str, int, int]]:
        """Figure 1: (domain name, taverna workflows, wings workflows)."""
        return [(d.name, d.taverna_workflows, d.wings_workflows) for d in DOMAINS]

    def __repr__(self) -> str:
        return (
            f"<Corpus seed={self.seed}: {len(self.templates)} workflows, "
            f"{len(self.traces)} runs, {len(self.failed_traces())} failed>"
        )


class CorpusBuilder:
    """Plans and executes the whole corpus build."""

    def __init__(self, seed: int = 2013, start: Optional[_dt.datetime] = None):
        self.seed = seed
        self.start = start if start is not None else _dt.datetime(2012, 5, 7, 9, 0, 0)
        self.generator = TemplateGenerator(seed=seed)

    # -- planning -------------------------------------------------------------------

    def plan_runs(self, templates: List[WorkflowTemplate]) -> List[RunPlanEntry]:
        """The deterministic 198-run plan with the 30-failure schedule."""
        rng = random.Random(self.seed)
        template_ids = [t.template_id for t in templates]
        shuffled = list(template_ids)
        rng.shuffle(shuffled)
        multi = set(shuffled[:MULTI_RUN_TEMPLATES])
        single = [tid for tid in template_ids if tid not in multi]

        # Most failures land on single-run templates; 6 hit the *last* run
        # of a multi-run template, leaving two earlier successful runs —
        # the donor material the decay application repairs from.
        multi_failing = set(rng.sample(sorted(multi), 6))
        failing = set(rng.sample(single, FAILED_RUNS - len(multi_failing)))
        cause_pool: List[str] = []
        for cause, count in FAILURE_MIX.items():
            cause_pool.extend([cause] * count)
        rng.shuffle(cause_pool)
        cause_of = dict(zip(sorted(failing | multi_failing), cause_pool))

        by_id = {t.template_id: t for t in templates}
        entries: List[RunPlanEntry] = []
        serial = 0
        for template_id in template_ids:
            template = by_id[template_id]
            runs = RUNS_PER_MULTI_TEMPLATE if template_id in multi else 1
            decay_template = template_id in multi and (hash_of(template_id, self.seed) % 2 == 0)
            for sequence in range(1, runs + 1):
                serial += 1
                users = TAVERNA_USERS if template.system == "taverna" else WINGS_USERS
                user = users[hash_of(template_id, sequence) % len(users)]
                fault_step = fault_cause = None
                failing_sequence = RUNS_PER_MULTI_TEMPLATE if template_id in multi else 1
                if template_id in cause_of and sequence == failing_sequence:
                    fault_cause = cause_of[template_id]
                    fault_step = self._fault_step(template, fault_cause)
                entries.append(
                    RunPlanEntry(
                        run_id=self._run_id(template, sequence),
                        template_id=template_id,
                        sequence=sequence,
                        variant=(sequence - 1) if decay_template else 0,
                        user=user,
                        fault_step=fault_step,
                        fault_cause=fault_cause,
                    )
                )
        assert len(entries) == TOTAL_RUNS, f"planned {len(entries)} runs, expected {TOTAL_RUNS}"
        assert sum(1 for e in entries if e.will_fail) == FAILED_RUNS
        return entries

    @staticmethod
    def _run_id(template: WorkflowTemplate, sequence: int) -> str:
        if template.system == "taverna":
            return f"{template.template_id}-run{sequence}"
        return f"ACCOUNT-{template.template_id}-run{sequence}"

    @staticmethod
    def _fault_step(template: WorkflowTemplate, cause: str) -> str:
        """Pick the step the fault hits, matched to the cause."""
        ordered = [p.name for p in template.topological_order()]
        remote = template.remote_steps()
        if cause in ("resource-unavailable", "service-timeout") and remote:
            return remote[0]
        if cause == "illegal-input-value" and len(ordered) > 1:
            return ordered[1]  # a mid-pipeline validation failure
        return ordered[0]

    # -- building ----------------------------------------------------------------------

    def build(self) -> Corpus:
        """Execute the full plan and export every trace."""
        templates = self.generator.all_templates()
        by_id = {t.template_id: t for t in templates}
        plan = self.plan_runs(templates)

        registry = self.generator.build_registry()
        components = self.generator.build_component_catalog()
        data_catalog = self.generator.build_data_catalog()
        clock = SimulatedClock(self.start)
        taverna = TavernaEngine(registry, clock)
        wings = WingsEngine(registry, clock, components, data_catalog)

        traces: List[CorpusTrace] = []
        for entry in plan:
            template = by_id[entry.template_id]
            # Spread runs over simulated months: 6h..72h between runs.
            gap_hours = 6 + hash_of(entry.run_id, self.seed) % 67
            clock.advance(gap_hours * 3600)
            fault_plan = (
                FaultPlan.single(entry.fault_step, entry.fault_cause)
                if entry.will_fail
                else FaultPlan.none()
            )
            inputs = self.generator.inputs_for(template, variant=entry.variant)
            if template.system == "taverna":
                run = taverna.run(template, inputs, run_id=entry.run_id,
                                  fault_plan=fault_plan, user=entry.user)
                document = taverna_export(run)
                export_template_description(template, document)
                text = serialize_turtle(to_graph(document))
                rdf_format = "turtle"
            else:
                run = wings.run(template, inputs, run_id=entry.run_id,
                                fault_plan=fault_plan, user=entry.user)
                document = wings_export(run)
                export_template(template, document)
                text = serialize_trig(to_dataset(document))
                rdf_format = "trig"
            result = run.result
            traces.append(
                CorpusTrace(
                    run_id=entry.run_id,
                    system=template.system,
                    domain=template.domain,
                    template_id=template.template_id,
                    template_name=template.name,
                    status=result.status,
                    started=result.started,
                    ended=result.ended,
                    user=entry.user,
                    document=document,
                    text=text,
                    rdf_format=rdf_format,
                    failed_step=result.failed_step,
                    failure_cause=result.failure_cause,
                    result=result,
                )
            )
        return Corpus(self.seed, by_id, traces, plan, self.generator)


def hash_of(*parts: object) -> int:
    """Stable (non-salted) hash for deterministic planning decisions."""
    import hashlib

    h = hashlib.sha1("|".join(str(p) for p in parts).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")
