"""Corpus construction: plan, execute, and export all 198 runs.

Reproduces Section 2 of the paper ("Corpus creation setup"):

* 120 workflows, each "executed at least one time";
* 198 runs in total — 39 templates are designated *multi-run* (3 runs
  each) for the decay studies, the remaining 81 run once
  (81 + 39 × 3 = 198);
* 30 runs fail, with the paper's cause mix — 14 third-party resource
  unavailability, 10 illegal input values, 6 service timeouts — injected
  deterministically at a chosen step;
* runs are spread over simulated months (decay is observed "over time");
* every run's provenance is exported with its system's native plugin
  conventions: Taverna → Turtle (PROV-O + wfprov + wfdesc),
  Wings → TriG (PROV-O + OPMW, account bundles as named graphs).

Everything derives from the integer seed (default 2013 — the paper's
year), so two builds produce byte-identical corpora.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs import metrics as _metrics
from ..obs import tracectx as _tracectx
from ..obs.trace import span as _span
from ..parallel import resolve_jobs as _resolve_jobs
from ..prov.model import ProvDocument
from ..prov.rdf_io import to_dataset, to_graph
from ..rdf.graph import Dataset, Graph
from ..rdf.trig import serialize_trig
from ..rdf.turtle import serialize_turtle
from ..taverna import TavernaEngine
from ..taverna import export_run as taverna_export
from ..taverna import export_template_description
from ..wings import WingsEngine
from ..wings import export_run as wings_export
from ..wings import export_template
from ..workflow.dataflow import RunResult, SimulatedClock
from ..workflow.errors import FAILURE_CAUSES, WorkflowError
from ..workflow.model import WorkflowTemplate
from ..workflow.services import FaultPlan
from .domains import DOMAINS, domain_by_slug
from .generator import TemplateGenerator

__all__ = ["RunPlanEntry", "CorpusTrace", "Corpus", "CorpusBuilder", "build_corpus"]

#: Paper constants (Section 2).  A ``scale`` factor multiplies each of
#: these linearly (templates, runs, failures, and the cause mix), so a
#: scale-N corpus is N seeded copies of the paper's proportions.
TOTAL_RUNS = 198
FAILED_RUNS = 30
FAILURE_MIX = {"resource-unavailable": 14, "illegal-input-value": 10, "service-timeout": 6}
MULTI_RUN_TEMPLATES = 39
MULTI_RUN_FAILURES = 6
RUNS_PER_MULTI_TEMPLATE = 3

TAVERNA_USERS = ("soiland-reyes", "kbelhajjame", "palper", "jzhao")
WINGS_USERS = ("dgarijo", "agarrido", "ocorcho", "vratnakar")

_BUILD_RUNS = _metrics.counter(
    "repro_build_runs_total", "Corpus runs built", labels=("system", "status")
)


@dataclass(frozen=True)
class RunPlanEntry:
    """One planned execution."""

    run_id: str
    template_id: str
    sequence: int  # 1-based run number for this template
    variant: int  # input variant (decay templates drift across sequences)
    user: str
    fault_step: Optional[str] = None
    fault_cause: Optional[str] = None

    @property
    def will_fail(self) -> bool:
        return self.fault_step is not None


@dataclass
class CorpusTrace:
    """One exported provenance trace plus its run metadata."""

    run_id: str
    system: str
    domain: str
    template_id: str
    template_name: str
    status: str
    started: _dt.datetime
    ended: Optional[_dt.datetime]
    user: str
    document: ProvDocument
    text: str  # serialized RDF (Turtle for Taverna, TriG for Wings)
    rdf_format: str  # "turtle" | "trig"
    failed_step: Optional[str] = None
    failure_cause: Optional[str] = None
    result: Optional[RunResult] = None

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))

    def graph(self) -> Graph:
        """The trace as a single merged RDF graph."""
        return to_graph(self.document)

    def dataset(self) -> Dataset:
        """The trace as a dataset (bundles as named graphs)."""
        return to_dataset(self.document)


class Corpus:
    """The built corpus: 120 templates, 198 traces, and query surfaces."""

    def __init__(
        self,
        seed: int,
        templates: Dict[str, WorkflowTemplate],
        traces: List[CorpusTrace],
        plan: List[RunPlanEntry],
        generator: TemplateGenerator,
    ):
        self.seed = seed
        self.templates = templates
        self.traces = traces
        self.plan = plan
        self.generator = generator
        self._merged: Optional[Dataset] = None
        self._system_graphs: Dict[str, Graph] = {}
        # Lazy selection indexes; traces are immutable after construction.
        self._by_run_id: Optional[Dict[str, CorpusTrace]] = None
        self._by_template: Optional[Dict[str, List[CorpusTrace]]] = None
        self._by_domain: Optional[Dict[str, List[CorpusTrace]]] = None
        self._by_system: Optional[Dict[str, List[CorpusTrace]]] = None

    # -- selection -------------------------------------------------------------

    def _build_indexes(self) -> None:
        by_run_id: Dict[str, CorpusTrace] = {}
        by_template: Dict[str, List[CorpusTrace]] = {}
        by_domain: Dict[str, List[CorpusTrace]] = {}
        by_system: Dict[str, List[CorpusTrace]] = {}
        for t in self.traces:
            by_run_id[t.run_id] = t
            by_template.setdefault(t.template_id, []).append(t)
            by_domain.setdefault(t.domain, []).append(t)
            by_system.setdefault(t.system, []).append(t)
        self._by_run_id = by_run_id
        self._by_template = by_template
        self._by_domain = by_domain
        self._by_system = by_system

    def by_system(self, system: str) -> List[CorpusTrace]:
        if self._by_system is None:
            self._build_indexes()
        return list(self._by_system.get(system, ()))

    def by_template(self, template_id: str) -> List[CorpusTrace]:
        if self._by_template is None:
            self._build_indexes()
        return list(self._by_template.get(template_id, ()))

    def by_domain(self, domain_slug: str) -> List[CorpusTrace]:
        if self._by_domain is None:
            self._build_indexes()
        return list(self._by_domain.get(domain_slug, ()))

    def failed_traces(self) -> List[CorpusTrace]:
        return [t for t in self.traces if t.failed]

    def trace(self, run_id: str) -> CorpusTrace:
        if self._by_run_id is None:
            self._build_indexes()
        try:
            return self._by_run_id[run_id]
        except KeyError:
            raise KeyError(f"no trace for run {run_id!r}") from None

    def multi_run_templates(self) -> List[str]:
        """Template ids with more than one run (the decay-study set)."""
        counts: Dict[str, int] = {}
        for trace in self.traces:
            counts[trace.template_id] = counts.get(trace.template_id, 0) + 1
        return sorted(tid for tid, n in counts.items() if n > 1)

    # -- query surfaces -----------------------------------------------------------

    def dataset(self) -> Dataset:
        """The whole corpus as one dataset (Wings bundles as named graphs)."""
        if self._merged is None:
            merged = Dataset()
            for trace in self.traces:
                trace_ds = trace.dataset()
                merged.default.add_all(trace_ds.default)
                for name in trace_ds.graph_names():
                    merged.graph(name).add_all(trace_ds.graph(name))
                for prefix, base in trace_ds.namespaces.namespaces():
                    merged.namespaces.bind(prefix, base, replace=False)
            self._merged = merged
        return self._merged

    def system_graph(self, system: str) -> Graph:
        """All of one system's traces merged into a single graph."""
        if system not in self._system_graphs:
            merged = Graph()
            for trace in self.by_system(system):
                merged.add_all(trace.graph())
            self._system_graphs[system] = merged
        return self._system_graphs[system]

    # -- statistics ------------------------------------------------------------------

    def total_size_bytes(self) -> int:
        return sum(t.size_bytes for t in self.traces)

    def statistics(self) -> Dict[str, object]:
        failed = self.failed_traces()
        causes: Dict[str, int] = {}
        for trace in failed:
            causes[trace.failure_cause] = causes.get(trace.failure_cause, 0) + 1
        return {
            "workflows": len(self.templates),
            "taverna_workflows": sum(1 for t in self.templates.values() if t.system == "taverna"),
            "wings_workflows": sum(1 for t in self.templates.values() if t.system == "wings"),
            "runs": len(self.traces),
            "taverna_runs": len(self.by_system("taverna")),
            "wings_runs": len(self.by_system("wings")),
            "failed_runs": len(failed),
            "failure_causes": causes,
            "domains": len(DOMAINS),
            "size_bytes": self.total_size_bytes(),
            "triples": sum(len(t.graph()) for t in self.traces),
        }

    def domain_histogram(self) -> List[Tuple[str, int, int]]:
        """Figure 1: (domain name, taverna workflows, wings workflows)."""
        return [(d.name, d.taverna_workflows, d.wings_workflows) for d in DOMAINS]

    def __repr__(self) -> str:
        return (
            f"<Corpus seed={self.seed}: {len(self.templates)} workflows, "
            f"{len(self.traces)} runs, {len(self.failed_traces())} failed>"
        )


class CorpusBuilder:
    """Plans and executes the whole corpus build."""

    def __init__(self, seed: int = 2013, start: Optional[_dt.datetime] = None,
                 scale: int = 1):
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.seed = seed
        self.scale = int(scale)
        self.start = start if start is not None else _dt.datetime(2012, 5, 7, 9, 0, 0)
        self.generator = TemplateGenerator(seed=seed, scale=self.scale)

    # -- planning -------------------------------------------------------------------

    def plan_runs(self, templates: List[WorkflowTemplate]) -> List[RunPlanEntry]:
        """The deterministic 198·scale-run plan with its failure schedule."""
        rng = random.Random(self.seed)
        template_ids = [t.template_id for t in templates]
        shuffled = list(template_ids)
        rng.shuffle(shuffled)
        multi = set(shuffled[:MULTI_RUN_TEMPLATES * self.scale])
        single = [tid for tid in template_ids if tid not in multi]

        # Most failures land on single-run templates; 6·scale hit the
        # *last* run of a multi-run template, leaving two earlier
        # successful runs — the donor material the decay application
        # repairs from.
        multi_failing = set(rng.sample(sorted(multi), MULTI_RUN_FAILURES * self.scale))
        failing = set(
            rng.sample(single, FAILED_RUNS * self.scale - len(multi_failing))
        )
        cause_pool: List[str] = []
        for cause, count in FAILURE_MIX.items():
            cause_pool.extend([cause] * (count * self.scale))
        rng.shuffle(cause_pool)
        cause_of = dict(zip(sorted(failing | multi_failing), cause_pool))

        by_id = {t.template_id: t for t in templates}
        entries: List[RunPlanEntry] = []
        serial = 0
        for template_id in template_ids:
            template = by_id[template_id]
            runs = RUNS_PER_MULTI_TEMPLATE if template_id in multi else 1
            decay_template = template_id in multi and (hash_of(template_id, self.seed) % 2 == 0)
            for sequence in range(1, runs + 1):
                serial += 1
                users = TAVERNA_USERS if template.system == "taverna" else WINGS_USERS
                user = users[hash_of(template_id, sequence) % len(users)]
                fault_step = fault_cause = None
                failing_sequence = RUNS_PER_MULTI_TEMPLATE if template_id in multi else 1
                if template_id in cause_of and sequence == failing_sequence:
                    fault_cause = cause_of[template_id]
                    fault_step = self._fault_step(template, fault_cause)
                entries.append(
                    RunPlanEntry(
                        run_id=self._run_id(template, sequence),
                        template_id=template_id,
                        sequence=sequence,
                        variant=(sequence - 1) if decay_template else 0,
                        user=user,
                        fault_step=fault_step,
                        fault_cause=fault_cause,
                    )
                )
        expected = TOTAL_RUNS * self.scale
        assert len(entries) == expected, f"planned {len(entries)} runs, expected {expected}"
        assert sum(1 for e in entries if e.will_fail) == FAILED_RUNS * self.scale
        return entries

    @staticmethod
    def _run_id(template: WorkflowTemplate, sequence: int) -> str:
        if template.system == "taverna":
            return f"{template.template_id}-run{sequence}"
        return f"ACCOUNT-{template.template_id}-run{sequence}"

    @staticmethod
    def _fault_step(template: WorkflowTemplate, cause: str) -> str:
        """Pick the step the fault hits, matched to the cause."""
        ordered = [p.name for p in template.topological_order()]
        remote = template.remote_steps()
        if cause in ("resource-unavailable", "service-timeout") and remote:
            return remote[0]
        if cause == "illegal-input-value" and len(ordered) > 1:
            return ordered[1]  # a mid-pipeline validation failure
        return ordered[0]

    # -- building ----------------------------------------------------------------------

    def plan(self) -> Tuple[Dict[str, WorkflowTemplate], List[RunPlanEntry]]:
        """Generate all templates and the run plan (no execution)."""
        templates = self.generator.all_templates()
        by_id = {t.template_id: t for t in templates}
        return by_id, self.plan_runs(templates)

    def build(self, jobs: int = 1, tracer=None) -> Corpus:
        """Execute the full plan and export every trace.

        With ``jobs > 1`` the per-run work (engine execution, PROV
        export, RDF serialization) fans out over a process pool; results
        merge back in plan order, so the returned corpus — trace order,
        timestamps, serialized bytes — is identical to a ``jobs=1``
        build.  ``jobs=None`` or ``0`` means one worker per CPU.

        With a *tracer*, every run emits a ``run`` span wrapping its
        ``execute`` / ``export`` / ``serialize`` phases; pool workers
        forward their spans with each result, merged in plan order.
        """
        by_id, plan = self.plan()
        traces = list(self.iter_traces(jobs=jobs, tracer=tracer, plan=plan, by_id=by_id))
        return Corpus(self.seed, by_id, traces, plan, self.generator)

    def iter_traces(
        self,
        jobs: int = 1,
        tracer=None,
        plan: Optional[List[RunPlanEntry]] = None,
        by_id: Optional[Dict[str, WorkflowTemplate]] = None,
    ) -> Iterator[CorpusTrace]:
        """Yield traces one at a time, in plan order.

        The streaming face of :meth:`build`: the same plan, the same
        bytes per trace at any worker count, but runs are produced
        lazily so a scale-N corpus never has to exist in RAM at once.
        Consumers that hold no reference to a yielded trace keep memory
        flat in the corpus size.
        """
        if plan is None or by_id is None:
            by_id, plan = self.plan()
        effective = jobs if jobs == 1 else min(_resolve_jobs(jobs), len(plan))
        if effective <= 1:
            yield from self._iter_serial(plan, by_id, tracer=tracer)
        else:
            from .parallel import iter_traces_parallel

            yield from iter_traces_parallel(self, plan, by_id, effective, tracer=tracer)

    def _build_serial(
        self, plan: List[RunPlanEntry], by_id: Dict[str, WorkflowTemplate],
        tracer=None,
    ) -> List[CorpusTrace]:
        """The sequential path: one clock threaded through all runs."""
        return list(self._iter_serial(plan, by_id, tracer=tracer))

    def _iter_serial(
        self, plan: List[RunPlanEntry], by_id: Dict[str, WorkflowTemplate],
        tracer=None,
    ) -> Iterator[CorpusTrace]:
        clock = SimulatedClock(self.start)
        taverna, wings = self._make_engines(clock)
        for entry in plan:
            clock.advance(self._gap_seconds(entry))
            if tracer is not None:
                tracer.reset_clock()
            # The per-run trace scope is entered (and exited) around the
            # build itself, not the yield, so generator suspension never
            # leaks a derived context into the consumer.
            with _tracectx.task_scope(entry.run_id):
                trace = self._trace_for(entry, by_id[entry.template_id],
                                        taverna, wings, tracer=tracer)
            yield trace

    def _make_engines(self, clock: SimulatedClock) -> Tuple[TavernaEngine, WingsEngine]:
        """Fresh engines over generator-derived infrastructure."""
        registry = self.generator.build_registry()
        components = self.generator.build_component_catalog()
        data_catalog = self.generator.build_data_catalog()
        taverna = TavernaEngine(registry, clock)
        wings = WingsEngine(registry, clock, components, data_catalog)
        return taverna, wings

    def _gap_seconds(self, entry: RunPlanEntry) -> int:
        """Simulated idle time before *entry*: 6h..72h, seeded per run."""
        return (6 + hash_of(entry.run_id, self.seed) % 67) * 3600

    def _execute_entry(
        self,
        entry: RunPlanEntry,
        template: WorkflowTemplate,
        taverna: TavernaEngine,
        wings: WingsEngine,
    ):
        """Enact one planned run on whichever engine owns the template."""
        fault_plan = (
            FaultPlan.single(entry.fault_step, entry.fault_cause)
            if entry.will_fail
            else FaultPlan.none()
        )
        inputs = self.generator.inputs_for(template, variant=entry.variant)
        engine = taverna if template.system == "taverna" else wings
        return engine.run(
            template, inputs, run_id=entry.run_id, fault_plan=fault_plan, user=entry.user
        )

    def _trace_for(
        self,
        entry: RunPlanEntry,
        template: WorkflowTemplate,
        taverna: TavernaEngine,
        wings: WingsEngine,
        tracer=None,
    ) -> CorpusTrace:
        """Execute one run and export its provenance trace."""
        with _span(tracer, "run", cat="build", run=entry.run_id,
                   template=entry.template_id, system=template.system) as run_span:
            with _span(tracer, "execute", cat="build", run=entry.run_id):
                run = self._execute_entry(entry, template, taverna, wings)
            if template.system == "taverna":
                with _span(tracer, "export", cat="build", run=entry.run_id):
                    document = taverna_export(run)
                    export_template_description(template, document)
                with _span(tracer, "serialize", cat="build", run=entry.run_id):
                    text = serialize_turtle(to_graph(document))
                rdf_format = "turtle"
            else:
                with _span(tracer, "export", cat="build", run=entry.run_id):
                    document = wings_export(run)
                    export_template(template, document)
                with _span(tracer, "serialize", cat="build", run=entry.run_id):
                    text = serialize_trig(to_dataset(document))
                rdf_format = "trig"
            result = run.result
            run_span.set(status=result.status)
            _BUILD_RUNS.labels(template.system, result.status).inc()
        return CorpusTrace(
            run_id=entry.run_id,
            system=template.system,
            domain=template.domain,
            template_id=template.template_id,
            template_name=template.name,
            status=result.status,
            started=result.started,
            ended=result.ended,
            user=entry.user,
            document=document,
            text=text,
            rdf_format=rdf_format,
            failed_step=result.failed_step,
            failure_cause=result.failure_cause,
            result=result,
        )

    def plan_start_times(
        self, plan: List[RunPlanEntry], by_id: Dict[str, WorkflowTemplate]
    ) -> List[_dt.datetime]:
        """The exact clock instant each planned run starts at.

        Run *n* starts after every earlier run's simulated duration plus
        its own idle gap, so start times form a serial dependency chain.
        Durations are pure functions of each run (latencies derive from
        content digests, never from the absolute clock), so a cheap
        execute-only pass — no PROV export, no serialization, under 5%
        of full build cost — resolves the whole chain; workers can then
        replay any run at its exact start time, independently.
        """
        clock = SimulatedClock(self.start)
        taverna, wings = self._make_engines(clock)
        starts: List[_dt.datetime] = []
        for entry in plan:
            clock.advance(self._gap_seconds(entry))
            starts.append(clock.now)
            try:
                self._execute_entry(entry, by_id[entry.template_id], taverna, wings)
            except WorkflowError as exc:
                message = f"run {entry.run_id} (template {entry.template_id}): {exc}"
                try:
                    wrapped = type(exc)(message)
                except Exception:
                    wrapped = WorkflowError(message)
                raise wrapped from exc
        return starts


def build_corpus(
    seed: int = 2013, jobs: int = 1, start: Optional[_dt.datetime] = None, tracer=None,
    scale: int = 1,
) -> Corpus:
    """Build the full 198·scale-run corpus; ``jobs`` fans runs over processes."""
    return CorpusBuilder(seed=seed, start=start, scale=scale).build(jobs=jobs, tracer=tracer)


def hash_of(*parts: object) -> int:
    """Stable (non-salted) hash for deterministic planning decisions."""
    import hashlib

    h = hashlib.sha1("|".join(str(p) for p in parts).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")
