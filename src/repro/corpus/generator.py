"""Deterministic generation of the corpus's 120 workflow templates.

The original corpus collected real workflows from myExperiment (Taverna)
and the Wings catalog.  This generator substitutes them with seeded,
structurally varied templates: what the provenance corpus exercises is
workflow *topology* (linear pipelines, diamonds, list processing, merges,
nested sub-workflows) and the engines' export conventions, both of which
are preserved (DESIGN.md §2).

Everything is a pure function of the template's (domain, index) pair, so
re-building the corpus regenerates byte-identical templates.

The ``scale`` knob multiplies the per-domain template counts (and, for
the linear Taverna family, widens the trace-depth rotation) without
perturbing the scale-1 output: template ``(domain, index)`` produces the
same bytes at every scale, extra scale only extends the index range.

Topology mix per system:

* Taverna (index mod 5): linear · diamond (split/merge) · list processing
  (filter/aggregate) · two-source merge · **nested sub-workflow** (the
  ``prov:wasInformedBy`` sites of Table 2);
* Wings (index mod 3): linear · parameterized (a ``ParameterVariable``
  feeding a step) · two-source combine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..wings.catalog import Component, ComponentCatalog, DataCatalog, TypeHierarchy
from ..workflow.model import Port, Processor, WorkflowTemplate
from ..workflow.services import Service, ServiceRegistry
from .domains import DOMAINS, Domain

__all__ = ["TemplateGenerator"]


class TemplateGenerator:
    """Builds templates, catalogs, and the service registry for one corpus."""

    def __init__(self, seed: int = 2013, scale: int = 1):
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.seed = seed
        self.scale = int(scale)
        self.types = TypeHierarchy()
        self.types.add("ReportArtifact")
        self.types.add("ParameterValue")
        for domain in DOMAINS:
            for name, parent in domain.data_types:
                self.types.add(name, parent)

    # -- infrastructure ---------------------------------------------------------

    def build_registry(self) -> ServiceRegistry:
        """All third-party services the Taverna workflows depend on."""
        registry = ServiceRegistry()
        for domain in DOMAINS:
            for service_name in domain.services:
                registry.register(
                    Service(
                        service_name,
                        kind="rest",
                        endpoint=f"http://services.example.org/{domain.slug}/{service_name}",
                        description=f"{domain.name} third-party service",
                        timeout_s=30.0,
                    )
                )
        return registry

    def build_component_catalog(self) -> ComponentCatalog:
        """One component family per domain, typed over the domain's types."""
        catalog = ComponentCatalog(self.types)
        for domain in DOMAINS:
            if domain.wings_workflows == 0:
                continue
            type_names = [name for name, _ in domain.data_types]
            first, last = type_names[0], type_names[-1]
            second = type_names[1] if len(type_names) > 1 else type_names[0]
            prefix = _camel(domain.slug)
            catalog.register(Component(
                f"{prefix}Loader", operation="fetch_dataset",
                input_types={"accession": "any"}, output_types={"sequences": first},
                description=f"load {domain.name} source data",
            ))
            catalog.register(Component(
                f"{prefix}Refine", operation="filter",
                input_types={"in": first}, output_types={"out": first},
                description=f"clean {domain.name} records",
            ))
            catalog.register(Component(
                f"{prefix}Derive", operation="transform",
                input_types={"in": first}, output_types={"out": second},
                description=f"derive {second} from {first}",
            ))
            catalog.register(Component(
                f"{prefix}Tune", operation="transform",
                input_types={"in": second, "threshold": "ParameterValue"},
                output_types={"out": second},
                description="parameterized refinement",
            ))
            catalog.register(Component(
                f"{prefix}Combine", operation="merge",
                input_types={"left": first, "right": second},
                output_types={"merged": last},
                description="combine intermediate products",
            ))
            catalog.register(Component(
                f"{prefix}Report", operation="render_report",
                input_types={"body": last}, output_types={"report": "ReportArtifact"},
                description=f"final {domain.name} report",
            ))
        return catalog

    def build_data_catalog(self) -> DataCatalog:
        """Input datasets for every Wings template (typed + located)."""
        catalog = DataCatalog(self.types)
        for domain in DOMAINS:
            for index in range(domain.wings_workflows * self.scale):
                template_id = self.wings_template_id(domain, index)
                catalog.add(
                    f"{template_id}-input",
                    "any",
                    f"dataset:{domain.slug}:{self.seed}:{index}",
                )
        return catalog

    # -- template ids -------------------------------------------------------------

    @staticmethod
    def taverna_template_id(domain: Domain, index: int) -> str:
        return f"t-{domain.slug}-{index + 1:02d}"

    @staticmethod
    def wings_template_id(domain: Domain, index: int) -> str:
        return f"w-{domain.slug}-{index + 1:02d}"

    # -- Taverna templates -----------------------------------------------------------

    def taverna_template(self, domain: Domain, index: int) -> WorkflowTemplate:
        builders: List[Callable[[Domain, int], WorkflowTemplate]] = [
            self._taverna_linear,
            self._taverna_diamond,
            self._taverna_list,
            self._taverna_two_source,
            self._taverna_nested,
        ]
        template = builders[index % len(builders)](domain, index)
        return template.freeze()

    def _new_taverna(self, domain: Domain, index: int, flavor: str) -> WorkflowTemplate:
        template_id = self.taverna_template_id(domain, index)
        return WorkflowTemplate(
            template_id,
            f"{domain.slug}_{flavor}_{index + 1:02d}",
            "taverna",
            domain=domain.slug,
            description=f"{domain.name} {flavor} workflow #{index + 1}",
        )

    @staticmethod
    def _step_name(domain: Domain, position: int) -> str:
        return domain.step_names[position % len(domain.step_names)]

    @staticmethod
    def _service(domain: Domain, index: int) -> str:
        return domain.services[index % len(domain.services)]

    def _taverna_linear(self, domain: Domain, index: int) -> WorkflowTemplate:
        t = self._new_taverna(domain, index, "pipeline")
        t.add_input("accession", data_type="string")
        t.add_output("report")
        t.add_processor(Processor(
            self._step_name(domain, 0), operation="fetch_dataset",
            inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
            service=self._service(domain, index),
            config={"records": 3 + index % 4},
        ))
        # 2..4 transform stages at scale 1; wider rotation (up to 2..8)
        # as the corpus scales so deep lineage chains appear.
        depth = 2 + index % (2 + min(self.scale, 6))
        previous = (self._step_name(domain, 0), "sequences")
        for stage in range(depth):
            name = f"{self._step_name(domain, stage + 1)}_{stage + 1}"
            t.add_processor(Processor(
                name, operation="transform",
                inputs=[Port("in")], outputs=[Port("out")],
                config={"label": name},
            ))
            t.connect(f"{previous[0]}:{previous[1]}", f"{name}:in")
            previous = (name, "out")
        reporter = f"{self._step_name(domain, depth + 1)}_report"
        t.add_processor(Processor(
            reporter, operation="render_report",
            inputs=[Port("body")], outputs=[Port("report")],
            config={"title": t.name},
        ))
        t.connect(f"{previous[0]}:{previous[1]}", f"{reporter}:body")
        t.connect(f":accession", f"{self._step_name(domain, 0)}:accession")
        t.connect(f"{reporter}:report", ":report")
        return t

    def _taverna_diamond(self, domain: Domain, index: int) -> WorkflowTemplate:
        t = self._new_taverna(domain, index, "diamond")
        t.add_input("accession", data_type="string")
        t.add_output("report")
        fetch = self._step_name(domain, 0)
        t.add_processor(Processor(
            fetch, operation="fetch_dataset",
            inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
            service=self._service(domain, index),
        ))
        t.add_processor(Processor(
            "branch", operation="split",
            inputs=[Port("in", depth=1)], outputs=[Port("part1"), Port("part2")],
        ))
        left = f"{self._step_name(domain, 1)}_left"
        right = f"{self._step_name(domain, 2)}_right"
        for name, part in ((left, "part1"), (right, "part2")):
            t.add_processor(Processor(
                name, operation="transform",
                inputs=[Port("in")], outputs=[Port("out")],
                config={"label": name},
            ))
            t.connect(f"branch:{part}", f"{name}:in")
        t.add_processor(Processor(
            "join", operation="merge",
            inputs=[Port("left"), Port("right")], outputs=[Port("merged")],
        ))
        reporter = self._step_name(domain, 3)
        t.add_processor(Processor(
            reporter, operation="render_report",
            inputs=[Port("body")], outputs=[Port("report")],
            config={"title": t.name},
        ))
        t.connect(":accession", f"{fetch}:accession")
        t.connect(f"{fetch}:sequences", "branch:in")
        t.connect(f"{left}:out", "join:left")
        t.connect(f"{right}:out", "join:right")
        t.connect("join:merged", f"{reporter}:body")
        t.connect(f"{reporter}:report", ":report")
        return t

    def _taverna_list(self, domain: Domain, index: int) -> WorkflowTemplate:
        t = self._new_taverna(domain, index, "listproc")
        t.add_input("accession", data_type="string")
        t.add_output("summary")
        fetch = self._step_name(domain, 0)
        t.add_processor(Processor(
            fetch, operation="fetch_dataset",
            inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
            service=self._service(domain, index),
            config={"records": 4 + index % 5},
        ))
        t.add_processor(Processor(
            "select", operation="filter",
            inputs=[Port("in", depth=1)], outputs=[Port("out", depth=1)],
            config={"keep_mod": 2 + index % 2},
        ))
        # Depth-0 input fed a depth-1 list: the engine iterates implicitly
        # (Taverna's signature list semantics; exported per-iteration).
        per_item = f"{self._step_name(domain, 1)}_each"
        t.add_processor(Processor(
            per_item, operation="transform",
            inputs=[Port("in", depth=0)], outputs=[Port("out")],
            config={"label": per_item},
        ))
        t.add_processor(Processor(
            "collate", operation="aggregate",
            inputs=[Port("in", depth=1)], outputs=[Port("out")],
        ))
        reporter = self._step_name(domain, 2)
        t.add_processor(Processor(
            reporter, operation="render_report",
            inputs=[Port("body")], outputs=[Port("report")],
            config={"title": t.name},
        ))
        t.connect(":accession", f"{fetch}:accession")
        t.connect(f"{fetch}:sequences", "select:in")
        t.connect("select:out", f"{per_item}:in")
        t.connect(f"{per_item}:out", "collate:in")
        t.connect("collate:out", f"{reporter}:body")
        t.connect(f"{reporter}:report", ":summary")
        return t

    def _taverna_two_source(self, domain: Domain, index: int) -> WorkflowTemplate:
        t = self._new_taverna(domain, index, "twosource")
        t.add_input("accession_a", data_type="string")
        t.add_input("accession_b", data_type="string")
        t.add_output("report")
        fetch_a = f"{self._step_name(domain, 0)}_a"
        fetch_b = f"{self._step_name(domain, 0)}_b"
        for name, service_offset, port in ((fetch_a, 0, "accession_a"), (fetch_b, 1, "accession_b")):
            t.add_processor(Processor(
                name, operation="fetch_dataset",
                inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
                service=self._service(domain, index + service_offset),
            ))
            t.connect(f":{port}", f"{name}:accession")
        t.add_processor(Processor(
            "combine", operation="merge",
            inputs=[Port("left", depth=1), Port("right", depth=1)], outputs=[Port("merged")],
        ))
        shaper = self._step_name(domain, 1)
        t.add_processor(Processor(
            shaper, operation="transform",
            inputs=[Port("in")], outputs=[Port("out")],
            config={"label": shaper},
        ))
        reporter = self._step_name(domain, 2)
        t.add_processor(Processor(
            reporter, operation="render_report",
            inputs=[Port("body")], outputs=[Port("report")],
            config={"title": t.name},
        ))
        t.connect(f"{fetch_a}:sequences", "combine:left")
        t.connect(f"{fetch_b}:sequences", "combine:right")
        t.connect("combine:merged", f"{shaper}:in")
        t.connect(f"{shaper}:out", f"{reporter}:body")
        t.connect(f"{reporter}:report", ":report")
        return t

    def _taverna_nested(self, domain: Domain, index: int) -> WorkflowTemplate:
        t = self._new_taverna(domain, index, "nested")
        t.add_input("accession", data_type="string")
        t.add_output("report")
        fetch = self._step_name(domain, 0)
        t.add_processor(Processor(
            fetch, operation="fetch_dataset",
            inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
            service=self._service(domain, index),
        ))
        inner = WorkflowTemplate(
            f"{self.taverna_template_id(domain, index)}.inner",
            f"{domain.slug}_inner_{index + 1:02d}",
            "taverna",
            domain=domain.slug,
            description="nested analysis sub-workflow",
        )
        inner.add_input("records", depth=1)
        inner.add_output("result")
        stage1 = self._step_name(domain, 1)
        stage2 = f"{self._step_name(domain, 2)}_2"
        inner.add_processor(Processor(
            stage1, operation="transform", inputs=[Port("in", depth=1)],
            outputs=[Port("out")], config={"label": stage1},
        ))
        inner.add_processor(Processor(
            stage2, operation="transform", inputs=[Port("in")],
            outputs=[Port("out")], config={"label": stage2},
        ))
        inner.connect(":records", f"{stage1}:in")
        inner.connect(f"{stage1}:out", f"{stage2}:in")
        inner.connect(f"{stage2}:out", ":result")
        inner.freeze()
        t.add_processor(Processor(
            "analysis", inputs=[Port("records", depth=1)], outputs=[Port("result")],
            subworkflow=inner,
        ))
        reporter = self._step_name(domain, 3)
        t.add_processor(Processor(
            reporter, operation="render_report",
            inputs=[Port("body")], outputs=[Port("report")],
            config={"title": t.name},
        ))
        t.connect(":accession", f"{fetch}:accession")
        t.connect(f"{fetch}:sequences", "analysis:records")
        t.connect("analysis:result", f"{reporter}:body")
        t.connect(f"{reporter}:report", ":report")
        return t

    # -- Wings templates -----------------------------------------------------------

    def wings_template(self, domain: Domain, index: int) -> WorkflowTemplate:
        if domain.wings_workflows == 0:
            raise ValueError(f"domain {domain.slug} has no Wings workflows")
        builders = [self._wings_linear, self._wings_parameterized, self._wings_combine]
        template = builders[index % len(builders)](domain, index)
        return template.freeze()

    def _new_wings(self, domain: Domain, index: int, flavor: str) -> WorkflowTemplate:
        template_id = self.wings_template_id(domain, index)
        return WorkflowTemplate(
            template_id,
            f"{domain.slug}_{flavor}_{index + 1:02d}",
            "wings",
            domain=domain.slug,
            description=f"{domain.name} Wings {flavor} template #{index + 1}",
        )

    def _domain_types(self, domain: Domain) -> Tuple[str, str, str]:
        names = [name for name, _ in domain.data_types]
        first = names[0]
        second = names[1] if len(names) > 1 else names[0]
        last = names[-1]
        return first, second, last

    def _wings_linear(self, domain: Domain, index: int) -> WorkflowTemplate:
        first, second, last = self._domain_types(domain)
        prefix = _camel(domain.slug)
        t = self._new_wings(domain, index, "linear")
        t.add_input("accession", data_type="any")
        t.add_output("report", data_type="ReportArtifact")
        t.add_processor(Processor(
            "load", operation=f"{prefix}Loader",
            inputs=[Port("accession", "any")], outputs=[Port("sequences", first, depth=1)],
        ))
        t.add_processor(Processor(
            "derive", operation=f"{prefix}Derive",
            inputs=[Port("in", first)], outputs=[Port("out", second)],
            config={"label": f"{domain.slug}-derive"},
        ))
        t.add_processor(Processor(
            "combine", operation=f"{prefix}Combine",
            inputs=[Port("left", first), Port("right", second)], outputs=[Port("merged", last)],
        ))
        t.add_processor(Processor(
            "report", operation=f"{prefix}Report",
            inputs=[Port("body", last)], outputs=[Port("report", "ReportArtifact")],
            config={"title": t.name},
        ))
        t.connect(":accession", "load:accession")
        t.connect("load:sequences", "derive:in")
        t.connect("load:sequences", "combine:left")
        t.connect("derive:out", "combine:right")
        t.connect("combine:merged", "report:body")
        t.connect("report:report", ":report")
        return t

    def _wings_parameterized(self, domain: Domain, index: int) -> WorkflowTemplate:
        first, second, last = self._domain_types(domain)
        prefix = _camel(domain.slug)
        t = self._new_wings(domain, index, "param")
        t.add_input("accession", data_type="any")
        t.add_output("report", data_type="ReportArtifact")
        t.add_parameter("threshold", 0.5 + (index % 4) * 0.1, data_type="ParameterValue")
        t.add_processor(Processor(
            "load", operation=f"{prefix}Loader",
            inputs=[Port("accession", "any")], outputs=[Port("sequences", first, depth=1)],
        ))
        t.add_processor(Processor(
            "refine", operation=f"{prefix}Refine",
            inputs=[Port("in", first, depth=1)], outputs=[Port("out", first, depth=1)],
            config={"keep_mod": 2},
        ))
        t.add_processor(Processor(
            "derive", operation=f"{prefix}Derive",
            inputs=[Port("in", first)], outputs=[Port("out", second)],
        ))
        t.add_processor(Processor(
            "tune", operation=f"{prefix}Tune",
            inputs=[Port("in", second), Port("threshold", "ParameterValue")],
            outputs=[Port("out", second)],
            config={"label": "tune"},
        ))
        t.add_processor(Processor(
            "combine", operation=f"{prefix}Combine",
            inputs=[Port("left", first), Port("right", second)], outputs=[Port("merged", last)],
        ))
        t.add_processor(Processor(
            "report", operation=f"{prefix}Report",
            inputs=[Port("body", last)], outputs=[Port("report", "ReportArtifact")],
            config={"title": t.name},
        ))
        t.connect(":accession", "load:accession")
        t.connect("load:sequences", "refine:in")
        t.connect("refine:out", "derive:in")
        t.connect("derive:out", "tune:in")
        t.connect("refine:out", "combine:left")
        t.connect("tune:out", "combine:right")
        t.connect("combine:merged", "report:body")
        t.connect("report:report", ":report")
        return t

    def _wings_combine(self, domain: Domain, index: int) -> WorkflowTemplate:
        first, second, last = self._domain_types(domain)
        prefix = _camel(domain.slug)
        t = self._new_wings(domain, index, "combine")
        t.add_input("accession_a", data_type="any")
        t.add_input("accession_b", data_type="any")
        t.add_output("report", data_type="ReportArtifact")
        for suffix, port in (("a", "accession_a"), ("b", "accession_b")):
            t.add_processor(Processor(
                f"load_{suffix}", operation=f"{prefix}Loader",
                inputs=[Port("accession", "any")], outputs=[Port("sequences", first, depth=1)],
            ))
            t.connect(f":{port}", f"load_{suffix}:accession")
        t.add_processor(Processor(
            "derive", operation=f"{prefix}Derive",
            inputs=[Port("in", first)], outputs=[Port("out", second)],
        ))
        t.add_processor(Processor(
            "combine", operation=f"{prefix}Combine",
            inputs=[Port("left", first), Port("right", second)], outputs=[Port("merged", last)],
        ))
        t.add_processor(Processor(
            "report", operation=f"{prefix}Report",
            inputs=[Port("body", last)], outputs=[Port("report", "ReportArtifact")],
            config={"title": t.name},
        ))
        t.connect("load_b:sequences", "derive:in")
        t.connect("load_a:sequences", "combine:left")
        t.connect("derive:out", "combine:right")
        t.connect("combine:merged", "report:body")
        t.connect("report:report", ":report")
        return t

    # -- batch access ---------------------------------------------------------------

    def all_templates(self) -> List[WorkflowTemplate]:
        """All 120·scale templates in deterministic (domain, system, index) order."""
        templates: List[WorkflowTemplate] = []
        for domain in DOMAINS:
            for index in range(domain.taverna_workflows * self.scale):
                templates.append(self.taverna_template(domain, index))
            for index in range(domain.wings_workflows * self.scale):
                templates.append(self.wings_template(domain, index))
        return templates

    def inputs_for(self, template: WorkflowTemplate, variant: int = 0) -> Dict[str, object]:
        """Deterministic workflow inputs; *variant* > 0 models the drifting
        upstream data that decay studies observe across re-runs."""
        marker = f"{template.template_id}:{self.seed}:v{variant}"
        values: Dict[str, object] = {}
        for port in template.inputs:
            values[port.name] = f"{port.name.upper()}-{marker}"
        return values


def _camel(slug: str) -> str:
    return "".join(part.capitalize() for part in slug.split("-"))
