"""The 12 application domains of the corpus (Figure 1).

The paper's Figure 1 is a histogram of workflow domains split by system
(Taverna vs. Wings) over 12 domains, with 120 workflows in total.  The
figure's exact bar heights are not machine-readable from the paper text,
so this module fixes a deterministic composition that preserves the
documented shape: 12 domains, 70 Taverna + 50 Wings = 120 workflows,
life-science domains dominated by Taverna (myExperiment's profile) and
data-analysis domains dominated by Wings (its published catalog).  The
substitution is recorded in DESIGN.md §2.

Each :class:`Domain` also carries the vocabulary the workflow generator
draws from: step-name pools, the third-party services its Taverna
workflows call (the fault-injection surface), and the data types its
Wings components are defined over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Domain", "DOMAINS", "domain_by_slug", "total_workflows"]


@dataclass(frozen=True)
class Domain:
    """One application domain of the corpus."""

    name: str
    slug: str
    taverna_workflows: int
    wings_workflows: int
    #: step-name flavour pool used by the template generator
    step_names: Tuple[str, ...]
    #: third-party services Taverna workflows in this domain depend on
    services: Tuple[str, ...]
    #: Wings data types (name, parent) for this domain's components
    data_types: Tuple[Tuple[str, str], ...] = ()

    @property
    def total(self) -> int:
        return self.taverna_workflows + self.wings_workflows


DOMAINS: List[Domain] = [
    Domain(
        "Bioinformatics", "bioinformatics", 14, 4,
        step_names=("fetch_sequences", "blast_search", "parse_hits", "align_sequences",
                    "build_tree", "annotate_genes", "render_summary"),
        services=("ebi-dbfetch", "ncbi-blast", "biomart"),
        data_types=(("SequenceSet", "any"), ("Alignment", "any"), ("GeneReport", "any")),
    ),
    Domain(
        "Genomics", "genomics", 9, 3,
        step_names=("load_assembly", "call_variants", "filter_variants", "annotate_variants",
                    "summarize_calls"),
        services=("ensembl-rest", "ucsc-das"),
        data_types=(("Assembly", "any"), ("VariantSet", "any"), ("VariantReport", "any")),
    ),
    Domain(
        "Proteomics", "proteomics", 7, 2,
        step_names=("load_spectra", "peak_detection", "db_search", "score_matches",
                    "protein_inference"),
        services=("pride-ws", "uniprot-rest"),
        data_types=(("SpectraSet", "any"), ("PeptideMatches", "any"), ("ProteinList", "any")),
    ),
    Domain(
        "Astronomy", "astronomy", 6, 5,
        step_names=("query_catalog", "extract_sources", "calibrate_flux", "crossmatch",
                    "period_analysis", "plot_lightcurve"),
        services=("vo-tap", "sdss-skyserver"),
        data_types=(("SourceCatalog", "any"), ("LightCurve", "any"), ("AstroPlot", "any")),
    ),
    Domain(
        "Biodiversity", "biodiversity", 8, 0,
        step_names=("fetch_occurrences", "clean_records", "geo_filter", "niche_model",
                    "richness_map"),
        services=("gbif-ws", "catalogue-of-life"),
        data_types=(("OccurrenceSet", "any"), ("NicheModel", "any")),
    ),
    Domain(
        "Cheminformatics", "cheminformatics", 6, 2,
        step_names=("fetch_structures", "standardize_mols", "compute_descriptors",
                    "similarity_search", "cluster_compounds"),
        services=("chembl-ws", "pubchem-pug"),
        data_types=(("CompoundSet", "any"), ("DescriptorTable", "any"), ("ClusterReport", "any")),
    ),
    Domain(
        "Text Mining", "text-mining", 5, 6,
        step_names=("harvest_corpus", "tokenize", "tag_entities", "extract_relations",
                    "topic_model", "summarize_topics"),
        services=("pubmed-eutils", "whatizit"),
        data_types=(("DocumentSet", "any"), ("EntitySet", "any"), ("TopicModel", "any")),
    ),
    Domain(
        "Machine Learning", "machine-learning", 3, 9,
        step_names=("load_dataset", "featurize", "train_classifier", "crossvalidate",
                    "evaluate_model", "report_metrics"),
        services=("model-repo",),
        data_types=(("FeatureTable", "any"), ("Classifier", "any"), ("MetricsReport", "any")),
    ),
    Domain(
        "Image Analysis", "image-analysis", 2, 7,
        step_names=("load_images", "denoise", "segment", "extract_features", "classify_regions",
                    "compose_atlas"),
        services=("image-archive",),
        data_types=(("ImageStack", "any"), ("SegmentationMask", "any"), ("FeatureTable2D", "any")),
    ),
    Domain(
        "Geoinformatics", "geoinformatics", 4, 3,
        step_names=("fetch_layers", "reproject", "raster_algebra", "zonal_statistics",
                    "render_map"),
        services=("ogc-wms", "geoserver-wfs"),
        data_types=(("RasterLayer", "any"), ("VectorLayer", "any"), ("MapDocument", "any")),
    ),
    Domain(
        "Social Network Analysis", "social-network-analysis", 3, 4,
        step_names=("crawl_graph", "build_adjacency", "compute_centrality", "detect_communities",
                    "plot_network"),
        services=("twitter-gardenhose",),
        data_types=(("EdgeList", "any"), ("CommunityPartition", "any"), ("NetworkPlot", "any")),
    ),
    Domain(
        "Drug Discovery", "drug-discovery", 3, 5,
        step_names=("screen_library", "dock_ligands", "score_poses", "admet_filter",
                    "rank_candidates"),
        services=("zinc-db", "docking-grid"),
        data_types=(("LigandLibrary", "any"), ("DockingPoses", "any"), ("CandidateList", "any")),
    ),
]

_BY_SLUG: Dict[str, Domain] = {d.slug: d for d in DOMAINS}


def domain_by_slug(slug: str) -> Domain:
    domain = _BY_SLUG.get(slug)
    if domain is None:
        raise KeyError(f"unknown domain {slug!r}")
    return domain


def total_workflows() -> Tuple[int, int, int]:
    """(taverna, wings, total) workflow counts across all domains."""
    taverna = sum(d.taverna_workflows for d in DOMAINS)
    wings = sum(d.wings_workflows for d in DOMAINS)
    return taverna, wings, taverna + wings
