"""The PROV-corpus layer: domains, generation, building, and storage.

This is the reproduction of the paper's contribution proper: a corpus of
provenance traces from 120 workflows (70 Taverna + 50 Wings, 12 domains),
executed 198 times with 30 deliberate failures, exported with each
system's native provenance conventions, and organized in the ProvBench
repository layout.
"""

from .builder import (
    Corpus,
    CorpusBuilder,
    CorpusTrace,
    FAILED_RUNS,
    FAILURE_MIX,
    RunPlanEntry,
    TOTAL_RUNS,
    build_corpus,
)
from .domains import DOMAINS, Domain, domain_by_slug, total_workflows
from .generator import TemplateGenerator
from .maintenance import MaintenanceIssue, MaintenanceReport, check_corpus
from .manifest import Table1Row, format_table1, table1
from .profile import CorpusProfile, TraceProfile, profile_corpus
from .research_objects import ResearchObjectManifest, package_corpus, package_template
from .storage import (
    StoredCorpus,
    StoredTrace,
    build_and_write,
    load_corpus,
    write_corpus,
)

__all__ = [
    "Corpus",
    "CorpusBuilder",
    "CorpusTrace",
    "build_corpus",
    "RunPlanEntry",
    "TOTAL_RUNS",
    "FAILED_RUNS",
    "FAILURE_MIX",
    "DOMAINS",
    "Domain",
    "domain_by_slug",
    "total_workflows",
    "TemplateGenerator",
    "table1",
    "format_table1",
    "Table1Row",
    "write_corpus",
    "build_and_write",
    "load_corpus",
    "StoredCorpus",
    "StoredTrace",
    "check_corpus",
    "MaintenanceReport",
    "MaintenanceIssue",
    "package_template",
    "package_corpus",
    "ResearchObjectManifest",
    "profile_corpus",
    "CorpusProfile",
    "TraceProfile",
]
