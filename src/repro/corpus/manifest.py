"""Table 1 — the corpus fact sheet.

Regenerates the paper's Table 1 ("Information about the PROV-corpus") from
a built corpus.  The constant rows (format, model, tools, group, license)
are properties of the construction itself; the size row is *measured* on
the built corpus and reported next to the paper's value (360 MB on the
authors' testbed — our synthetic data values are far more compact, so the
absolute number differs while the row itself is regenerated; see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .builder import Corpus
from .domains import DOMAINS

__all__ = ["Table1Row", "table1", "format_table1", "PAPER_TABLE1_SIZE_MB"]

#: The size the paper reports for the original corpus.
PAPER_TABLE1_SIZE_MB = 360.0


@dataclass(frozen=True)
class Table1Row:
    field: str
    value: str


def table1(corpus: Corpus) -> List[Table1Row]:
    """The rows of Table 1, in the paper's order."""
    stats = corpus.statistics()
    size_mb = stats["size_bytes"] / (1024 * 1024)
    return [
        Table1Row("Data format", "RDF (Turtle for Taverna traces, TriG for Wings bundles)"),
        Table1Row("Data model", "PROV-O"),
        Table1Row("Size", f"{size_mb:.1f} Megabytes ({stats['triples']} triples; paper: 360 MB)"),
        Table1Row(
            "Tools used for generating provenance",
            "Taverna and Wings provenance plug-ins (reproduced exporters)",
        ),
        Table1Row("Domain", f"see Figure 1 ({len(DOMAINS)} domains)"),
        Table1Row("Submission group", "Wf4Ever-Wings"),
        Table1Row("License", "Creative Commons Attribution 3.0 Unported"),
    ]


def format_table1(corpus: Corpus) -> str:
    """Table 1 as fixed-width console text."""
    rows = table1(corpus)
    width = max(len(r.field) for r in rows)
    lines = ["Table 1: Information about the PROV-corpus", "-" * 72]
    for row in rows:
        lines.append(f"{row.field.ljust(width)}  {row.value}")
    stats = corpus.statistics()
    lines.append("-" * 72)
    lines.append(
        f"Workflows: {stats['workflows']} "
        f"(Taverna {stats['taverna_workflows']}, Wings {stats['wings_workflows']}) | "
        f"Runs: {stats['runs']} | Failed: {stats['failed_runs']}"
    )
    return "\n".join(lines)
