"""On-disk corpus layout, mirroring the ProvBench GitHub repository.

The original corpus (github.com/provbench/Wf4Ever-PROV) organizes traces
by workflow system, then workflow.  We reproduce that shape:

    <root>/
      manifest.json                  # build metadata + Table 1 numbers
      Taverna/<domain>/<template>/
        workflow.t2flow              # the workflow definition
        <run-id>.prov.ttl            # one Turtle trace per run
      Wings/<domain>/<template>/
        <run-id>.prov.trig           # one TriG trace per run (bundles)

:func:`write_corpus` persists a built :class:`Corpus`; :func:`load_corpus`
reads the directory back into RDF datasets without re-running anything —
this is the path a corpus *consumer* (someone who downloaded ProvBench)
uses, and what the loader tests exercise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import events as _events
from ..rdf.graph import Dataset, Graph
from ..rdf.trig import parse_trig
from ..rdf.turtle import parse_turtle
from ..taverna.t2flow import to_t2flow
from .builder import Corpus, CorpusBuilder, CorpusTrace
from .domains import DOMAINS

__all__ = ["write_corpus", "build_and_write", "load_corpus", "StoredTrace",
           "StoredCorpus"]

# Imported lazily where needed so `repro.corpus` stays importable even if
# the optional persistent-store layer is stripped from a deployment.


def _open_store(store_path: Path, corpus_root: Path, jobs: int = 1, tracer=None,
                store_kwargs: Optional[Dict] = None, on_file=None):
    """Open (or create) a quad store and sync it with the corpus files."""
    from ..store import QuadStore, ingest_corpus

    store = QuadStore(Path(store_path), **(store_kwargs or {}))
    try:
        ingest_corpus(store, corpus_root, jobs=jobs, tracer=tracer, on_file=on_file)
    except Exception:
        store.close()
        raise
    return store

_SYSTEM_DIR = {"taverna": "Taverna", "wings": "Wings"}
_EXTENSION = {"turtle": ".prov.ttl", "trig": ".prov.trig"}


class _TraceWriter:
    """Writes traces to the ProvBench layout one at a time.

    Shared by the materialized (:func:`write_corpus`) and streaming
    (:func:`build_and_write`) paths so both produce byte-identical trees
    and manifests.  Holds only manifest entries and running statistics —
    never the traces themselves — so memory stays flat in corpus size.
    """

    def __init__(self, root: Path, templates: Dict[str, object]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.templates = templates
        self._written_templates = set()
        self.manifest_traces: List[Dict] = []
        self._runs_by_system = {"taverna": 0, "wings": 0}
        self._failed = 0
        self._causes: Dict[str, int] = {}
        self._size_bytes = 0
        self._triples = 0

    def add(self, trace: CorpusTrace) -> None:
        system_dir = _SYSTEM_DIR[trace.system]
        template_dir = self.root / system_dir / trace.domain / trace.template_id
        template_dir.mkdir(parents=True, exist_ok=True)
        if trace.system == "taverna" and trace.template_id not in self._written_templates:
            template = self.templates[trace.template_id]
            (template_dir / "workflow.t2flow").write_text(to_t2flow(template))
            self._written_templates.add(trace.template_id)
        filename = trace.run_id + _EXTENSION[trace.rdf_format]
        (template_dir / filename).write_text(trace.text)
        self.manifest_traces.append({
            "run_id": trace.run_id,
            "system": trace.system,
            "domain": trace.domain,
            "template_id": trace.template_id,
            "template_name": trace.template_name,
            "status": trace.status,
            "failed_step": trace.failed_step,
            "failure_cause": trace.failure_cause,
            "started": trace.started.isoformat(),
            "ended": trace.ended.isoformat() if trace.ended is not None else None,
            "user": trace.user,
            "format": trace.rdf_format,
            "path": str(Path(system_dir) / trace.domain / trace.template_id / filename),
            "size_bytes": trace.size_bytes,
        })
        self._runs_by_system[trace.system] += 1
        if trace.failed:
            self._failed += 1
            self._causes[trace.failure_cause] = self._causes.get(trace.failure_cause, 0) + 1
        self._size_bytes += trace.size_bytes
        self._triples += len(trace.graph())

    @property
    def triples(self) -> int:
        """Running triple total (progress reporting reads this)."""
        return self._triples

    def statistics(self) -> Dict[str, object]:
        """Running totals in the exact shape of :meth:`Corpus.statistics`."""
        return {
            "workflows": len(self.templates),
            "taverna_workflows": sum(
                1 for t in self.templates.values() if t.system == "taverna"
            ),
            "wings_workflows": sum(
                1 for t in self.templates.values() if t.system == "wings"
            ),
            "runs": len(self.manifest_traces),
            "taverna_runs": self._runs_by_system["taverna"],
            "wings_runs": self._runs_by_system["wings"],
            "failed_runs": self._failed,
            "failure_causes": dict(self._causes),
            "domains": len(DOMAINS),
            "size_bytes": self._size_bytes,
            "triples": self._triples,
        }

    def finish(self, seed: int) -> Path:
        manifest = {
            "name": "Wf4Ever-PROV (reproduction)",
            "seed": seed,
            "statistics": self.statistics(),
            "traces": self.manifest_traces,
        }
        manifest_path = self.root / "manifest.json"
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        return manifest_path


def write_corpus(
    corpus: Corpus, root: Path, store: Optional[Path] = None, jobs: int = 1,
    tracer=None,
) -> Path:
    """Write the corpus under *root*; returns the manifest path.

    When *store* names a directory, the freshly written traces are also
    ingested into a persistent :class:`repro.store.QuadStore` there (built
    incrementally — unchanged traces are skipped by content hash).  *jobs*
    is forwarded to :func:`repro.store.ingest_corpus`, which parses trace
    files in worker processes when it is greater than one; the resulting
    segments are byte-identical either way.
    """
    writer = _TraceWriter(Path(root), corpus.templates)
    for trace in corpus.traces:
        writer.add(trace)
    manifest_path = writer.finish(corpus.seed)
    if store is not None:
        _open_store(store, writer.root, jobs=jobs, tracer=tracer).close()
    return manifest_path


def build_and_write(
    builder: CorpusBuilder,
    root: Path,
    store: Optional[Path] = None,
    jobs: int = 1,
    tracer=None,
    on_trace=None,
    store_kwargs: Optional[Dict] = None,
    on_ingest_file=None,
) -> Path:
    """Build *builder*'s corpus straight to disk, one trace at a time.

    The streaming counterpart of ``write_corpus(builder.build(), root)``:
    byte-identical tree and manifest, but no trace list is ever held in
    memory, so a ``--scale 50`` corpus builds in flat RSS.  *on_trace*,
    when given, is called as ``on_trace(done, total, writer)`` after each
    trace hits disk — the writer exposes running totals (``triples``,
    ``statistics()``) for progress reporting.  *store_kwargs* are
    forwarded to :class:`repro.store.QuadStore` (e.g.
    ``spill_quad_budget``); *on_ingest_file* is forwarded to
    :func:`repro.store.ingest_corpus` as its per-file progress hook.
    """
    by_id, plan = builder.plan()
    writer = _TraceWriter(Path(root), by_id)
    total = len(plan)
    for index, trace in enumerate(
        builder.iter_traces(jobs=jobs, tracer=tracer, plan=plan, by_id=by_id)
    ):
        writer.add(trace)
        if on_trace is not None:
            on_trace(index + 1, total, writer)
    manifest_path = writer.finish(builder.seed)
    _events.emit(
        "build.done",
        root=str(root),
        seed=builder.seed,
        scale=builder.scale,
        runs=total,
        triples=writer.triples,
        jobs=jobs,
    )
    if store is not None:
        _open_store(store, writer.root, jobs=jobs, tracer=tracer,
                    store_kwargs=store_kwargs, on_file=on_ingest_file).close()
    return manifest_path


@dataclass
class StoredTrace:
    """A trace read back from disk (RDF only; no engine objects)."""

    run_id: str
    system: str
    domain: str
    template_id: str
    status: str
    failure_cause: Optional[str]
    rdf_format: str
    path: Path
    text: str = ""
    relpath: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def _source(self) -> str:
        """Document name used in parse error messages."""
        return self.relpath or str(self.path)

    def graph(self) -> Graph:
        """The trace merged into one graph (named graphs collapsed)."""
        if self.rdf_format == "trig":
            return self.dataset().union_graph()
        return parse_turtle(self.text, source=self._source)

    def dataset(self) -> Dataset:
        if self.rdf_format == "trig":
            return parse_trig(self.text, source=self._source)
        dataset = Dataset()
        parse_turtle(self.text, graph=dataset.default, source=self._source)
        return dataset


@dataclass
class StoredCorpus:
    """A corpus loaded from disk.

    When *store* is attached (``load_corpus(root, store=...)``), queries
    run against the persistent quad store instead of re-parsing every
    trace: :meth:`dataset` returns a read-only
    :class:`repro.store.StoreDataset` view.  Call :meth:`close` (or use
    the instance as a context manager) when done with a store-backed
    corpus.
    """

    root: Path
    manifest: Dict
    traces: List[StoredTrace] = field(default_factory=list)
    store: Optional[object] = None

    @property
    def statistics(self) -> Dict:
        return self.manifest["statistics"]

    def by_system(self, system: str) -> List[StoredTrace]:
        return [t for t in self.traces if t.system == system]

    def failed_traces(self) -> List[StoredTrace]:
        return [t for t in self.traces if t.failed]

    def dataset(self) -> Dataset:
        """All traces merged into one queryable dataset."""
        if self.store is not None:
            from ..store import StoreDataset

            return StoreDataset(self.store)
        merged = Dataset()
        for trace in self.traces:
            ds = trace.dataset()  # parse errors carry trace.relpath as source
            merged.default.add_all(ds.default)
            for name in ds.graph_names():
                merged.graph(name).add_all(ds.graph(name))
            for prefix, base in ds.namespaces.namespaces():
                merged.namespaces.bind(prefix, base, replace=False)
        return merged

    def close(self) -> None:
        if self.store is not None:
            self.store.close()
            self.store = None

    def __enter__(self) -> "StoredCorpus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def system_graph(self, system: str) -> Graph:
        merged = Graph()
        for trace in self.by_system(system):
            merged.add_all(trace.graph())
        return merged


def load_corpus(root: Path, store: Optional[Path] = None) -> StoredCorpus:
    """Read a corpus directory written by :func:`write_corpus`.

    With *store*, a persistent quad store at that path is opened (created
    and synced incrementally if needed) and attached, so
    :meth:`StoredCorpus.dataset` serves queries from disk segments instead
    of re-parsing all traces.
    """
    root = Path(root)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest.json under {root}")
    manifest = json.loads(manifest_path.read_text())
    stored = StoredCorpus(root=root, manifest=manifest)
    for entry in manifest["traces"]:
        path = root / entry["path"]
        stored.traces.append(
            StoredTrace(
                run_id=entry["run_id"],
                system=entry["system"],
                domain=entry["domain"],
                template_id=entry["template_id"],
                status=entry["status"],
                failure_cause=entry.get("failure_cause"),
                rdf_format=entry["format"],
                path=path,
                text=path.read_text(),
                relpath=entry["path"],
            )
        )
    if store is not None:
        stored.store = _open_store(store, root)
    return stored
