"""Read access to a persisted path/pattern index.

:class:`PathIndex` is the object the rest of the stack programs against.
It is deliberately self-describing — predicate IRIs map to relation
codes through the manifest, never through the term dictionary — so the
SPARQL layer can duck-type on it (via ``graph.path_index()``, the same
capability pattern as ``encoded_scope()``) without importing either this
package or ``repro.store``.

Staleness is generation-keyed: :func:`load_path_index` returns whatever
generation is committed on disk, and the store's accessor rejects any
index whose recorded generation differs from the live store's — after a
compaction or reset the index simply disappears until rebuilt, and every
consumer falls back to BFS over the graph API.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .format import (
    FWD_FILE,
    INV_FILE,
    MANIFEST_FILE,
    REL_DERIVATION,
    REL_GENERATED_BY,
    REL_USED,
    TRIE_FILE,
    AdjacencyReader,
    read_index_manifest,
)
from .trie import TrieReader

__all__ = ["PathIndex", "load_path_index"]


class PathIndex:
    """One open index: forward/inverse adjacency plus the pattern trie."""

    #: Relation-code attributes, re-exported so consumers can say
    #: ``index.DERIVATION`` without importing repro.pathindex.
    USED = REL_USED
    GENERATED_BY = REL_GENERATED_BY
    DERIVATION = REL_DERIVATION

    def __init__(self, directory: Path, manifest: Dict):
        self.path = Path(directory)
        self.manifest = manifest
        self._relations: Dict[str, int] = dict(manifest.get("relations", {}))
        self._fwd = AdjacencyReader(self.path / FWD_FILE)
        self._inv = AdjacencyReader(self.path / INV_FILE)
        self._trie: Optional[TrieReader] = None

    # -- identity ------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self.manifest.get("generation", -1)

    @property
    def edge_count(self) -> int:
        return len(self._fwd)

    def close(self) -> None:
        self._fwd.close()
        self._inv.close()
        if self._trie is not None:
            self._trie.close()
            self._trie = None

    def probes(self) -> int:
        """Cumulative adjacency bisect probes (plain int, hot path)."""
        return self._fwd.probes + self._inv.probes

    def info(self) -> Dict:
        """Structural summary for ``store_info()`` / diagnostics."""
        sizes = {}
        for name in (FWD_FILE, INV_FILE, TRIE_FILE, MANIFEST_FILE):
            target = self.path / name
            sizes[name] = target.stat().st_size if target.exists() else 0
        return {
            "generation": self.generation,
            "edges": self.edge_count,
            "sequences": self.manifest.get("trie", {}).get("sequences", 0),
            "bytes": sizes,
        }

    # -- relations -----------------------------------------------------------

    def rel_for(self, predicate_value: str) -> Optional[int]:
        """Relation code for a predicate IRI value, or None when the
        predicate is not indexed (the caller then falls back to BFS)."""
        return self._relations.get(predicate_value)

    # -- adjacency -----------------------------------------------------------

    def neighbors(self, rel: int, node: int) -> Iterator[int]:
        """Forward neighbors of *node* under *rel*, ascending ids."""
        return self._fwd.neighbors(rel, node)

    def neighbors_inv(self, rel: int, node: int) -> Iterator[int]:
        """Inverse neighbors (sources pointing at *node*), ascending."""
        return self._inv.neighbors(rel, node)

    def pairs(self, rel: int) -> Iterator[Tuple[int, int]]:
        """(src, dst) pairs of *rel* ordered by (dst, src) — the same
        order a union posg scan yields the predicate's triples, which is
        what keeps full-scan path evaluation order-identical to BFS."""
        for dst, src in self._inv.pairs(rel):
            yield (src, dst)

    def has_edge(self, rel: int, src: int, dst: int) -> bool:
        return self._fwd.has(rel, src, dst)

    def sources(self, rel: int) -> Iterator[int]:
        """Distinct source nodes of *rel*, ascending."""
        return self._fwd.firsts(rel)

    def targets(self, rel: int) -> Iterator[int]:
        """Distinct target nodes of *rel*, ascending."""
        return self._inv.firsts(rel)

    def degree(self, rel: int, node: int) -> int:
        return self._fwd.degree(rel, node)

    def in_dag(self, rel: int, node: int) -> bool:
        """Does *node* participate in *rel* at all (either direction)?"""
        return self._fwd.degree(rel, node) > 0 or self._inv.degree(rel, node) > 0

    # -- trie ----------------------------------------------------------------

    @property
    def trie(self) -> TrieReader:
        if self._trie is None:
            self._trie = TrieReader(self.path / TRIE_FILE)
        return self._trie

    def runs_matching(self, labels: Sequence[int]) -> List[int]:
        return self.trie.runs_matching(labels)

    def frequent_patterns(
        self, min_support: int = 2, min_length: int = 2,
        max_patterns: Optional[int] = None,
    ) -> List[Tuple[Tuple[int, ...], int]]:
        return self.trie.frequent_patterns(min_support, min_length, max_patterns)

    def __repr__(self) -> str:
        return (
            f"<PathIndex {self.path} gen={self.generation} "
            f"edges={self.edge_count}>"
        )


def load_path_index(directory: Path) -> Optional[PathIndex]:
    """Open the committed index under *directory*, or None when no valid
    index is present (missing/foreign manifest or missing edge files)."""
    directory = Path(directory)
    manifest = read_index_manifest(directory)
    if manifest is None:
        return None
    for name in (FWD_FILE, INV_FILE, TRIE_FILE):
        if not (directory / name).exists():
            return None
    return PathIndex(directory, manifest)
