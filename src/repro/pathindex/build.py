"""Build the persistent path/pattern index from a store's segments.

:func:`build_path_index` derives everything from the store's **current
compacted generation** — sorted segment scans in id space plus a handful
of label/timestamp decodes — and writes the three index files followed
by the manifest (the commit point).  Because segment files are
byte-identical across serial and parallel ingest, so is the index.

Edge derivation (see :mod:`repro.pathindex.format` for the relation
table):

* relations 0–5 copy the raw predicate extensions — ``prov:used``,
  ``prov:wasGeneratedBy``, asserted ``prov:wasDerivedFrom`` and its
  subproperties — over the union scope (distinct (s, o) pairs across
  graphs, exactly what a plain BGP matches);
* relation 6 (``derivation``) composes usage through generation:
  ``product --wasGeneratedBy--> activity --used--> source`` yields
  product → source for every source ≠ product, merged with every
  asserted derivation (sub)property edge whose object is an IRI — the
  same relation :class:`repro.apps.dependencies.DependencyAnalyzer`
  derives per query, materialized once.

Sequence extraction for the trie groups process activities by their
**run**: Taverna processes via ``wfprov:wasPartOfWorkflowRun`` (typed
``wfprov:ProcessRun``), Wings processes via ``opmw:isStepOfTemplate``
pointing at a ``opmw:WorkflowExecutionAccount``.  Runs are keyed by the
run/account term id — graph ids cannot do this job, because Turtle
traces all land in the default graph.  Within a run, activities sort by
(``prov:startedAtTime`` lexical, template-step IRI), which is temporal
order for Taverna and stable step order for Wings (whose exports carry
no per-process timestamps).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..prov.constants import DERIVATION_SUBPROPERTIES
from ..rdf.namespace import OPMW, PROV, RDF, WFPROV
from ..rdf.terms import IRI
from .format import (
    FWD_FILE,
    INDEX_FORMAT_VERSION,
    INV_FILE,
    REL_DERIVATION,
    REL_GENERATED_BY,
    REL_HAD_PRIMARY_SOURCE,
    REL_USED,
    REL_WAS_DERIVED_FROM,
    REL_WAS_QUOTED_FROM,
    REL_WAS_REVISION_OF,
    RELATION_NAMES,
    TRIE_FILE,
    write_edges_stream,
    write_index_manifest,
)
from .trie import write_trie

__all__ = ["build_path_index", "run_sequences", "store_files_sha",
           "DEFAULT_EDGE_BUDGET"]

#: In-memory edge cap before the spool spills a sorted run to disk.
#: Sized like the store's spill budget: high enough that the default
#: corpus (≈50k quads) never spills, low enough that a scale-50 build's
#: peak RSS stays flat.  ``None``/``0`` disables spilling (pure
#: in-memory sort — the pre-spool behaviour).
DEFAULT_EDGE_BUDGET = 500_000

#: Asserted derivation predicates → relation code (wasDerivedFrom plus
#: its PROV-O subproperties, in the constants' order).
_ASSERTED_RELS: List[Tuple[IRI, int]] = [
    (PROV.wasDerivedFrom, REL_WAS_DERIVED_FROM),
    (DERIVATION_SUBPROPERTIES[0], REL_HAD_PRIMARY_SOURCE),   # hadPrimarySource
    (DERIVATION_SUBPROPERTIES[1], REL_WAS_QUOTED_FROM),      # wasQuotedFrom
    (DERIVATION_SUBPROPERTIES[2], REL_WAS_REVISION_OF),      # wasRevisionOf
]


def store_files_sha(store) -> str:
    """sha256 over the store's ingested-file hash map — the incremental
    rebuild key: an unchanged corpus re-ingest keeps it (and the store
    generation) fixed, so the index stays valid without a rebuild."""
    canonical = json.dumps(store.files, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _union_pairs(store, predicate: IRI) -> Iterator[Tuple[int, int]]:
    """Distinct (s, o) id pairs of *predicate* over the union scope, in
    the posg segment's (o, s) sort order.  A generator over the mmap'd
    segment — never materializes the predicate's full extension."""
    pid = store.term_id(predicate)
    if pid is None:
        return
    for _, o, s in store.segment("posg").scan_distinct_triples((pid,)):
        yield (s, o)


_SPOOL_EDGE = struct.Struct("<3I")
_SPOOL_READ_RECORDS = 65536


class _EdgeSpool:
    """Bounded-memory accumulator for distinct (rel, src, dst) edges.

    Edges collect in an in-memory set; when the set reaches *budget*, it
    spills as two sorted scratch runs — one in forward (rel, src, dst)
    order, one permuted to the inverse (rel, dst, src) order — so both
    final files come out of a k-way ``heapq.merge`` over their runs plus
    the residual set, with a one-record lookbehind collapsing cross-run
    duplicates.  The merged streams are byte-identical to sorting the
    whole edge set in memory, which is what keeps the index reproducible
    regardless of budget.  Scratch runs are plain transient files (no
    fsync/rename dance — a crashed build leaves no commit, and leftovers
    are swept on the next build).
    """

    def __init__(self, directory: Path, budget: Optional[int]):
        self._dir = Path(directory)
        self._budget = budget or 0
        self._edges: set = set()
        self._spills = 0
        self.spill_runs = 0  # spilled run count (tests/diagnostics)

    def _run_path(self, batch: int, inverse: bool) -> Path:
        suffix = "inv" if inverse else "fwd"
        return self._dir / f"paths.spool-{batch:04d}.{suffix}"

    def add(self, rel: int, src: int, dst: int) -> None:
        self._edges.add((rel, src, dst))
        if self._budget and len(self._edges) >= self._budget:
            self._spill()

    def _spill(self) -> None:
        batch = self._spills
        for inverse in (False, True):
            if inverse:
                records = sorted((r, d, s) for r, s, d in self._edges)
            else:
                records = sorted(self._edges)
            with open(self._run_path(batch, inverse), "wb") as handle:
                buffer = bytearray()
                for record in records:
                    buffer += _SPOOL_EDGE.pack(*record)
                    if len(buffer) >= (1 << 20):
                        handle.write(buffer)
                        del buffer[:]
                if buffer:
                    handle.write(buffer)
        self._edges.clear()
        self._spills += 1
        self.spill_runs += 1

    def _iter_run(self, batch: int, inverse: bool) -> Iterator[Tuple[int, int, int]]:
        with open(self._run_path(batch, inverse), "rb") as handle:
            while True:
                chunk = handle.read(_SPOOL_READ_RECORDS * _SPOOL_EDGE.size)
                if not chunk:
                    return
                yield from _SPOOL_EDGE.iter_unpack(chunk)

    def merged(self, inverse: bool = False) -> Iterator[Tuple[int, int, int]]:
        """Sorted, duplicate-free edge stream (leaves the spool reusable,
        so the forward and inverse merges run over the same state)."""
        sources = [self._iter_run(batch, inverse) for batch in range(self._spills)]
        if inverse:
            sources.append(iter(sorted((r, d, s) for r, s, d in self._edges)))
        else:
            sources.append(iter(sorted(self._edges)))
        last = None
        for record in heapq.merge(*sources):
            if record != last:
                last = record
                yield record

    def cleanup(self) -> None:
        for name in os.listdir(self._dir):
            if name.startswith("paths.spool-"):
                (self._dir / name).unlink()


def _first_object(store, spog, subject_id: int, predicate_id: Optional[int]) -> Optional[int]:
    if predicate_id is None:
        return None
    for _, _, o in spog.scan_distinct_triples((subject_id, predicate_id)):
        return o
    return None


def _has(spog, s: int, p: Optional[int], o: Optional[int]) -> bool:
    if p is None or o is None:
        return False
    return spog.count_prefix((s, p, o)) > 0


def run_sequences(store) -> Dict[int, List[int]]:
    """Per-run activity-label sequences, keyed by run/account term id.

    Exposed separately from :func:`build_path_index` so parity tests and
    benchmarks can brute-force pattern support against the raw sequences
    the trie was built from.
    """
    tid = store.term_id
    spog = store.segment("spog")
    type_id = tid(RDF.type)

    # (run id → [(sort key, label id)]) — labels are template-step ids.
    grouped: Dict[int, List[Tuple[Tuple[str, str, int], int]]] = {}

    def decoded_value(term_id: int) -> str:
        term = store.term(term_id)
        return getattr(term, "value", None) or getattr(term, "lexical", str(term))

    def add(run_id: int, proc_id: int, label_id: Optional[int], start_pid) -> None:
        label = label_id if label_id is not None else proc_id
        start = ""
        started = _first_object(store, spog, proc_id, start_pid)
        if started is not None:
            start = getattr(store.term(started), "lexical", "")
        key = (start, decoded_value(label), proc_id)
        grouped.setdefault(run_id, []).append((key, label))

    # Taverna: ProcessRun --wasPartOfWorkflowRun--> run.
    process_run = tid(WFPROV.ProcessRun)
    described_by = tid(WFPROV.describedByProcess)
    started_at = tid(PROV.startedAtTime)
    for proc, run in _union_pairs(store, WFPROV.wasPartOfWorkflowRun):
        if not _has(spog, proc, type_id, process_run):
            continue  # nested WorkflowRun activities are not steps
        add(run, proc, _first_object(store, spog, proc, described_by), started_at)

    # Wings: WorkflowExecutionProcess --isStepOfTemplate--> account.
    exec_process = tid(OPMW.WorkflowExecutionProcess)
    exec_account = tid(OPMW.WorkflowExecutionAccount)
    corresponds = tid(OPMW.correspondsToTemplateProcess)
    for proc, account in _union_pairs(store, OPMW.isStepOfTemplate):
        # The same predicate also links template steps to templates;
        # keep only execution-process → execution-account edges.
        if not _has(spog, proc, type_id, exec_process):
            continue
        if not _has(spog, account, type_id, exec_account):
            continue
        add(account, proc, _first_object(store, spog, proc, corresponds), started_at)

    return {
        run_id: [label for _, label in sorted(entries)]
        for run_id, entries in sorted(grouped.items())
    }


def build_path_index(store, spill_edge_budget: Optional[int] = DEFAULT_EDGE_BUDGET) -> Dict:
    """Derive and persist the index for the store's current generation;
    returns the committed manifest.

    Requires a compacted store (no pending WAL state): the index is a
    pure function of the segment files it scans.

    Memory is bounded by *spill_edge_budget*: edges stream from segment
    scans into an :class:`_EdgeSpool` that spills sorted runs to disk
    and k-way merges them into the final files, and the usage→generation
    composition resolves each generating activity's used entities with a
    spog prefix bisect instead of a corpus-wide ``used_of`` map.  Only
    the trie's per-run sequences (O(runs), not O(quads)) stay resident.
    The output bytes do not depend on the budget.
    """
    if store.has_pending():
        raise RuntimeError("build_path_index() requires a compacted store")

    spool = _EdgeSpool(store.path, spill_edge_budget)
    spool.cleanup()  # sweep scratch runs a crashed build left behind
    try:
        spog = store.segment("spog")
        used_pid = store.term_id(PROV.used)

        for activity, entity in _union_pairs(store, PROV.used):
            spool.add(REL_USED, activity, entity)

        for entity, activity in _union_pairs(store, PROV.wasGeneratedBy):
            spool.add(REL_GENERATED_BY, entity, activity)
            # Compose product --wasGeneratedBy--> activity --used--> source
            # via a spog prefix scan per generating activity; duplicates
            # across activities fall out in the spool's merge.
            if used_pid is None:
                continue
            for _, _, source in spog.scan_distinct_triples((activity, used_pid)):
                if source != entity:
                    spool.add(REL_DERIVATION, entity, source)

        for predicate, rel in _ASSERTED_RELS:
            for subject, obj in _union_pairs(store, predicate):
                spool.add(rel, subject, obj)
                # The apps-layer DAG only follows IRI-valued derivations.
                if isinstance(store.term(obj), IRI):
                    spool.add(REL_DERIVATION, subject, obj)

        edge_count = write_edges_stream(store.path / FWD_FILE, spool.merged(inverse=False))
        write_edges_stream(store.path / INV_FILE, spool.merged(inverse=True))
    finally:
        spool.cleanup()

    sequences = run_sequences(store)
    trie_bytes = write_trie(store.path / TRIE_FILE, sequences)

    relations = {}
    for predicate, rel in [(PROV.used, REL_USED), (PROV.wasGeneratedBy, REL_GENERATED_BY)] + _ASSERTED_RELS:
        relations[predicate.value] = rel
    manifest = {
        "format_version": INDEX_FORMAT_VERSION,
        "generation": store.generation,
        "files_sha": store_files_sha(store),
        "edge_count": edge_count,
        "relations": relations,
        "relation_names": {name: code for code, name in RELATION_NAMES.items()},
        "trie": {
            "bytes": len(trie_bytes),
            "sequences": len(sequences),
        },
    }
    write_index_manifest(store.path, manifest)
    return manifest
