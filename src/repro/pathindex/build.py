"""Build the persistent path/pattern index from a store's segments.

:func:`build_path_index` derives everything from the store's **current
compacted generation** — sorted segment scans in id space plus a handful
of label/timestamp decodes — and writes the three index files followed
by the manifest (the commit point).  Because segment files are
byte-identical across serial and parallel ingest, so is the index.

Edge derivation (see :mod:`repro.pathindex.format` for the relation
table):

* relations 0–5 copy the raw predicate extensions — ``prov:used``,
  ``prov:wasGeneratedBy``, asserted ``prov:wasDerivedFrom`` and its
  subproperties — over the union scope (distinct (s, o) pairs across
  graphs, exactly what a plain BGP matches);
* relation 6 (``derivation``) composes usage through generation:
  ``product --wasGeneratedBy--> activity --used--> source`` yields
  product → source for every source ≠ product, merged with every
  asserted derivation (sub)property edge whose object is an IRI — the
  same relation :class:`repro.apps.dependencies.DependencyAnalyzer`
  derives per query, materialized once.

Sequence extraction for the trie groups process activities by their
**run**: Taverna processes via ``wfprov:wasPartOfWorkflowRun`` (typed
``wfprov:ProcessRun``), Wings processes via ``opmw:isStepOfTemplate``
pointing at a ``opmw:WorkflowExecutionAccount``.  Runs are keyed by the
run/account term id — graph ids cannot do this job, because Turtle
traces all land in the default graph.  Within a run, activities sort by
(``prov:startedAtTime`` lexical, template-step IRI), which is temporal
order for Taverna and stable step order for Wings (whose exports carry
no per-process timestamps).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Set, Tuple

from ..prov.constants import DERIVATION_SUBPROPERTIES
from ..rdf.namespace import OPMW, PROV, RDF, WFPROV
from ..rdf.terms import IRI
from .format import (
    FWD_FILE,
    INDEX_FORMAT_VERSION,
    INV_FILE,
    REL_DERIVATION,
    REL_GENERATED_BY,
    REL_HAD_PRIMARY_SOURCE,
    REL_USED,
    REL_WAS_DERIVED_FROM,
    REL_WAS_QUOTED_FROM,
    REL_WAS_REVISION_OF,
    RELATION_NAMES,
    TRIE_FILE,
    write_edges,
    write_index_manifest,
)
from .trie import write_trie

__all__ = ["build_path_index", "run_sequences", "store_files_sha"]

#: Asserted derivation predicates → relation code (wasDerivedFrom plus
#: its PROV-O subproperties, in the constants' order).
_ASSERTED_RELS: List[Tuple[IRI, int]] = [
    (PROV.wasDerivedFrom, REL_WAS_DERIVED_FROM),
    (DERIVATION_SUBPROPERTIES[0], REL_HAD_PRIMARY_SOURCE),   # hadPrimarySource
    (DERIVATION_SUBPROPERTIES[1], REL_WAS_QUOTED_FROM),      # wasQuotedFrom
    (DERIVATION_SUBPROPERTIES[2], REL_WAS_REVISION_OF),      # wasRevisionOf
]


def store_files_sha(store) -> str:
    """sha256 over the store's ingested-file hash map — the incremental
    rebuild key: an unchanged corpus re-ingest keeps it (and the store
    generation) fixed, so the index stays valid without a rebuild."""
    canonical = json.dumps(store.files, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _union_pairs(store, predicate: IRI) -> List[Tuple[int, int]]:
    """Distinct (s, o) id pairs of *predicate* over the union scope, in
    the posg segment's (o, s) sort order."""
    pid = store.term_id(predicate)
    if pid is None:
        return []
    return [
        (s, o)
        for _, o, s in store.segment("posg").scan_distinct_triples((pid,))
    ]


def _first_object(store, spog, subject_id: int, predicate_id: Optional[int]) -> Optional[int]:
    if predicate_id is None:
        return None
    for _, _, o in spog.scan_distinct_triples((subject_id, predicate_id)):
        return o
    return None


def _has(spog, s: int, p: Optional[int], o: Optional[int]) -> bool:
    if p is None or o is None:
        return False
    return spog.count_prefix((s, p, o)) > 0


def run_sequences(store) -> Dict[int, List[int]]:
    """Per-run activity-label sequences, keyed by run/account term id.

    Exposed separately from :func:`build_path_index` so parity tests and
    benchmarks can brute-force pattern support against the raw sequences
    the trie was built from.
    """
    tid = store.term_id
    spog = store.segment("spog")
    type_id = tid(RDF.type)

    # (run id → [(sort key, label id)]) — labels are template-step ids.
    grouped: Dict[int, List[Tuple[Tuple[str, str, int], int]]] = {}

    def decoded_value(term_id: int) -> str:
        term = store.term(term_id)
        return getattr(term, "value", None) or getattr(term, "lexical", str(term))

    def add(run_id: int, proc_id: int, label_id: Optional[int], start_pid) -> None:
        label = label_id if label_id is not None else proc_id
        start = ""
        started = _first_object(store, spog, proc_id, start_pid)
        if started is not None:
            start = getattr(store.term(started), "lexical", "")
        key = (start, decoded_value(label), proc_id)
        grouped.setdefault(run_id, []).append((key, label))

    # Taverna: ProcessRun --wasPartOfWorkflowRun--> run.
    process_run = tid(WFPROV.ProcessRun)
    described_by = tid(WFPROV.describedByProcess)
    started_at = tid(PROV.startedAtTime)
    for proc, run in _union_pairs(store, WFPROV.wasPartOfWorkflowRun):
        if not _has(spog, proc, type_id, process_run):
            continue  # nested WorkflowRun activities are not steps
        add(run, proc, _first_object(store, spog, proc, described_by), started_at)

    # Wings: WorkflowExecutionProcess --isStepOfTemplate--> account.
    exec_process = tid(OPMW.WorkflowExecutionProcess)
    exec_account = tid(OPMW.WorkflowExecutionAccount)
    corresponds = tid(OPMW.correspondsToTemplateProcess)
    for proc, account in _union_pairs(store, OPMW.isStepOfTemplate):
        # The same predicate also links template steps to templates;
        # keep only execution-process → execution-account edges.
        if not _has(spog, proc, type_id, exec_process):
            continue
        if not _has(spog, account, type_id, exec_account):
            continue
        add(account, proc, _first_object(store, spog, proc, corresponds), started_at)

    return {
        run_id: [label for _, label in sorted(entries)]
        for run_id, entries in sorted(grouped.items())
    }


def build_path_index(store) -> Dict:
    """Derive and persist the index for the store's current generation;
    returns the committed manifest.

    Requires a compacted store (no pending WAL state): the index is a
    pure function of the segment files it scans.
    """
    if store.has_pending():
        raise RuntimeError("build_path_index() requires a compacted store")

    edges: Set[Tuple[int, int, int]] = set()
    used_of: Dict[int, List[int]] = {}

    for activity, entity in _union_pairs(store, PROV.used):
        edges.add((REL_USED, activity, entity))
        used_of.setdefault(activity, []).append(entity)
    for entities in used_of.values():
        entities.sort()

    generated: List[Tuple[int, int]] = _union_pairs(store, PROV.wasGeneratedBy)
    for entity, activity in generated:
        edges.add((REL_GENERATED_BY, entity, activity))

    derivation: Set[Tuple[int, int]] = set()
    for entity, activity in generated:
        for source in used_of.get(activity, ()):
            if source != entity:
                derivation.add((entity, source))
    for predicate, rel in _ASSERTED_RELS:
        for subject, obj in _union_pairs(store, predicate):
            edges.add((rel, subject, obj))
            # The apps-layer DAG only follows IRI-valued derivations.
            if isinstance(store.term(obj), IRI):
                derivation.add((subject, obj))
    edges.update((REL_DERIVATION, a, b) for a, b in derivation)

    fwd = sorted(edges)
    inv = sorted((rel, dst, src) for rel, src, dst in edges)
    write_edges(store.path / FWD_FILE, fwd)
    write_edges(store.path / INV_FILE, inv)

    sequences = run_sequences(store)
    trie_bytes = write_trie(store.path / TRIE_FILE, sequences)

    relations = {}
    for predicate, rel in [(PROV.used, REL_USED), (PROV.wasGeneratedBy, REL_GENERATED_BY)] + _ASSERTED_RELS:
        relations[predicate.value] = rel
    manifest = {
        "format_version": INDEX_FORMAT_VERSION,
        "generation": store.generation,
        "files_sha": store_files_sha(store),
        "edge_count": len(fwd),
        "relations": relations,
        "relation_names": {name: code for code, name in RELATION_NAMES.items()},
        "trie": {
            "bytes": len(trie_bytes),
            "sequences": len(sequences),
        },
    }
    write_index_manifest(store.path, manifest)
    return manifest
