"""Generalized trie over per-run activity sequences.

Each workflow run contributes one *sequence*: the run's process
activities in canonical order (start time, then template-step IRI),
labeled by the **template step** they instantiate (``wfprov:
describedByProcess`` / ``opmw:correspondsToTemplateProcess``).  Labeling
by template step rather than by the run-unique activity IRI is what
makes patterns comparable across runs: every run of a template walks the
same label alphabet, so a frequent execution pattern is simply a trie
node with many distinct runs in its postings.

The trie is *generalized*: every suffix of every sequence is inserted,
so any **contiguous** sub-pattern of any run is the path to some node —
frequent-pattern queries and "which runs contain this step chain"
lookups are prefix walks, not scans.

On-disk layout (``paths.trie``)::

    header   magic b"RPVTRIE1", u32 node_count, u32 posting_count,
             u32 sequence_count, u32 reserved
    nodes    node_count × (parent u32, label u32, postings_off u32,
             postings_len u32)
    postings posting_count × u32 run-term-ids, each node's slice sorted

Node ids are assigned breadth-first with children visited in ascending
label order, so the node array is sorted by ``(parent, label)`` and a
child lookup is a binary search over the array itself — no pointer
blocks.  Node 0 is the root; its postings list every indexed run.  The
whole encoding is a pure function of the sequences, which the builder
derives from sorted segment scans: serial and parallel ingests produce
byte-identical tries.
"""

from __future__ import annotations

import mmap
import os
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["build_trie_bytes", "TrieReader", "TRIE_MAGIC"]

TRIE_MAGIC = b"RPVTRIE1"
_HEADER = struct.Struct("<8s4I")
_NODE = struct.Struct("<4I")
_POSTING = struct.Struct("<I")


class _Node:
    __slots__ = ("children", "runs")

    def __init__(self):
        self.children: Dict[int, "_Node"] = {}
        self.runs: set = set()


def build_trie_bytes(sequences: Dict[int, Sequence[int]]) -> bytes:
    """Serialize the generalized trie of *sequences* (run id → labels)."""
    root = _Node()
    for run_id in sorted(sequences):
        labels = list(sequences[run_id])
        root.runs.add(run_id)
        for start in range(len(labels)):
            node = root
            for label in labels[start:]:
                child = node.children.get(label)
                if child is None:
                    child = node.children[label] = _Node()
                node = child
                node.runs.add(run_id)

    # Breadth-first id assignment, children in label order: the node
    # array comes out sorted by (parent, label), which is what makes the
    # reader's child lookup a binary search over the array itself.
    nodes: List[Tuple[int, int, _Node]] = [(0, 0, root)]
    queue: List[Tuple[int, _Node]] = [(0, root)]
    while queue:
        parent_id, node = queue.pop(0)
        for label in sorted(node.children):
            child = node.children[label]
            child_id = len(nodes)
            nodes.append((parent_id, label, child))
            queue.append((child_id, child))

    postings: List[int] = []
    records = bytearray()
    for parent_id, label, node in nodes:
        runs = sorted(node.runs)
        records += _NODE.pack(parent_id, label, len(postings), len(runs))
        postings.extend(runs)

    out = bytearray()
    out += _HEADER.pack(TRIE_MAGIC, len(nodes), len(postings), len(sequences), 0)
    out += records
    for run_id in postings:
        out += _POSTING.pack(run_id)
    return bytes(out)


def write_trie(path: Path, sequences: Dict[int, Sequence[int]]) -> bytes:
    """Build and atomically write the trie; returns the serialized bytes."""
    data = build_trie_bytes(sequences)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return data


class TrieReader:
    """mmap read access to a serialized pattern trie."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._map: Optional[mmap.mmap] = None
        self.node_count = 0
        self.posting_count = 0
        self.sequence_count = 0
        self._nodes_off = _HEADER.size
        self._postings_off = _HEADER.size
        if self.path.exists() and self.path.stat().st_size >= _HEADER.size:
            with open(self.path, "rb") as handle:
                self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            magic, nodes, postings, sequences, _ = _HEADER.unpack_from(self._map, 0)
            if magic != TRIE_MAGIC:
                self._map.close()
                self._map = None
                return
            self.node_count = nodes
            self.posting_count = postings
            self.sequence_count = sequences
            self._postings_off = self._nodes_off + nodes * _NODE.size

    @property
    def ok(self) -> bool:
        return self._map is not None

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None

    def _node(self, index: int) -> Tuple[int, int, int, int]:
        return _NODE.unpack_from(self._map, self._nodes_off + index * _NODE.size)

    def _runs(self, index: int) -> List[int]:
        _, _, off, length = self._node(index)
        base = self._postings_off + off * _POSTING.size
        return [
            _POSTING.unpack_from(self._map, base + i * _POSTING.size)[0]
            for i in range(length)
        ]

    def _child(self, node: int, label: int) -> Optional[int]:
        """Binary search the (parent, label)-sorted node array; skips the
        root record at index 0 (parent 0, label 0 — never a real key)."""
        key = (node, label)
        lo, hi = 1, self.node_count
        while lo < hi:
            mid = (lo + hi) // 2
            if self._node(mid)[:2] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < self.node_count and self._node(lo)[:2] == key:
            return lo
        return None

    def _children(self, node: int) -> Iterator[int]:
        lo, hi = 1, self.node_count
        while lo < hi:
            mid = (lo + hi) // 2
            if self._node(mid)[0] < node:
                lo = mid + 1
            else:
                hi = mid
        index = lo
        while index < self.node_count and self._node(index)[0] == node:
            yield index
            index += 1

    # -- queries ------------------------------------------------------------

    def runs_matching(self, labels: Sequence[int]) -> List[int]:
        """Sorted run ids whose sequence contains *labels* contiguously
        (the empty pattern matches every indexed run)."""
        if not self.ok:
            return []
        node = 0
        for label in labels:
            child = self._child(node, label)
            if child is None:
                return []
            node = child
        return self._runs(node)

    def support(self, labels: Sequence[int]) -> int:
        return len(self.runs_matching(labels))

    def frequent_patterns(
        self,
        min_support: int = 2,
        min_length: int = 2,
        max_patterns: Optional[int] = None,
    ) -> List[Tuple[Tuple[int, ...], int]]:
        """(label pattern, run support) pairs with support ≥ *min_support*
        and length ≥ *min_length*, most frequent first (ties: pattern
        order).  Support counts distinct runs, not occurrences."""
        if not self.ok:
            return []
        found: List[Tuple[Tuple[int, ...], int]] = []
        stack: List[Tuple[int, Tuple[int, ...]]] = [(0, ())]
        while stack:
            node, prefix = stack.pop()
            for child in self._children(node):
                _, label, _, length = self._node(child)
                if length < min_support:
                    continue  # postings only shrink downward; prune
                pattern = prefix + (label,)
                if len(pattern) >= min_length:
                    found.append((pattern, length))
                stack.append((child, pattern))
        found.sort(key=lambda item: (-item[1], item[0]))
        if max_patterns is not None:
            found = found[:max_patterns]
        return found
