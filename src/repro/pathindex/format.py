"""On-disk format of the persistent path/pattern index.

The index lives beside a store's segment files as three flat files plus
a JSON manifest, all derived purely from the current segment generation:

    pathindex.json   manifest: format version, the store generation the
                     index was built from, a sha over the store's
                     ingested-file hashes, relation table, record counts
    paths.fwd        sorted edge records (rel, src, dst) — forward
                     adjacency per relation
    paths.inv        sorted edge records (rel, dst, src) — inverse
                     adjacency per relation
    paths.trie       generalized trie over per-run activity sequences
                     (see :mod:`repro.pathindex.trie`)

Edge records are fixed-width 12-byte rows of three little-endian ``u32``
values, sorted lexicographically — the same mmap + binary-search access
discipline as the store's quad segments, so a ``(rel, node)`` prefix maps
to one contiguous neighbor range.  All writes go through a tmp file +
fsync + atomic rename; the manifest is written last and is the commit
point, mirroring the store's own manifest protocol.

Relations are small integer codes, fixed by the format:

====  =======================  ========================================
code  name                     edge direction
====  =======================  ========================================
0     used                     activity → entity (``prov:used``)
1     wasGeneratedBy           entity → activity (``prov:wasGeneratedBy``)
2     wasDerivedFrom           asserted ``prov:wasDerivedFrom`` only
3     hadPrimarySource         asserted subproperty
4     wasQuotedFrom            asserted subproperty
5     wasRevisionOf            asserted subproperty
6     derivation               product → source: the usage→generation
                               composition plus every asserted
                               derivation (sub)property with an IRI
                               object — the apps-layer dependency DAG
====  =======================  ========================================

Codes 0–5 mirror raw predicates one-to-one so the SPARQL property-path
evaluator can replay its BFS discovery order in id space byte for byte;
code 6 is the pre-composed relation the applications traverse.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "INDEX_FORMAT_VERSION",
    "MANIFEST_FILE",
    "FWD_FILE",
    "INV_FILE",
    "TRIE_FILE",
    "REL_USED",
    "REL_GENERATED_BY",
    "REL_WAS_DERIVED_FROM",
    "REL_HAD_PRIMARY_SOURCE",
    "REL_WAS_QUOTED_FROM",
    "REL_WAS_REVISION_OF",
    "REL_DERIVATION",
    "RELATION_NAMES",
    "AdjacencyReader",
    "write_edges",
    "write_edges_stream",
    "write_index_manifest",
    "read_index_manifest",
]

INDEX_FORMAT_VERSION = 1

MANIFEST_FILE = "pathindex.json"
FWD_FILE = "paths.fwd"
INV_FILE = "paths.inv"
TRIE_FILE = "paths.trie"

REL_USED = 0
REL_GENERATED_BY = 1
REL_WAS_DERIVED_FROM = 2
REL_HAD_PRIMARY_SOURCE = 3
REL_WAS_QUOTED_FROM = 4
REL_WAS_REVISION_OF = 5
REL_DERIVATION = 6

#: code → stable name (manifest and diagnostics).
RELATION_NAMES = {
    REL_USED: "used",
    REL_GENERATED_BY: "wasGeneratedBy",
    REL_WAS_DERIVED_FROM: "wasDerivedFrom",
    REL_HAD_PRIMARY_SOURCE: "hadPrimarySource",
    REL_WAS_QUOTED_FROM: "wasQuotedFrom",
    REL_WAS_REVISION_OF: "wasRevisionOf",
    REL_DERIVATION: "derivation",
}

_EDGE = struct.Struct("<3I")
EDGE_SIZE = _EDGE.size


def write_edges(path: Path, records: Sequence[Tuple[int, int, int]]) -> None:
    """Write pre-sorted edge records via tmp file + fsync + atomic rename."""
    write_edges_stream(path, iter(records))


def write_edges_stream(
    path: Path, records: "Iterator[Tuple[int, int, int]]",
    buffer_bytes: int = 1 << 20,
) -> int:
    """Stream pre-sorted edge records to *path* (tmp + atomic rename).

    The external-merge build path: *records* is typically a k-way merge
    over sorted spool runs, so this never holds more than *buffer_bytes*
    of output in memory.  Returns the record count.
    """
    tmp = path.with_name(path.name + ".tmp")
    count = 0
    buffer = bytearray()
    with open(tmp, "wb") as handle:
        for record in records:
            buffer += _EDGE.pack(*record)
            count += 1
            if len(buffer) >= buffer_bytes:
                handle.write(buffer)
                del buffer[:]
        if buffer:
            handle.write(buffer)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return count


class AdjacencyReader:
    """Binary-search access to one sorted edge file.

    The record layout mirrors :class:`repro.store.segments.SegmentReader`
    at width three: ``(rel, a, b)`` sorted lexicographically, so the
    neighbors of ``a`` under ``rel`` are the contiguous ``(rel, a)``
    prefix range, already in ascending ``b`` order.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._map: Optional[mmap.mmap] = None
        self.record_count = 0
        # Plain-int probe counter, same rationale as SegmentReader.probes:
        # this sits in the BFS inner loop.
        self.probes = 0
        if self.path.exists() and self.path.stat().st_size:
            with open(self.path, "rb") as handle:
                self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            self.record_count = len(self._map) // EDGE_SIZE

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None

    def record(self, index: int) -> Tuple[int, int, int]:
        return _EDGE.unpack_from(self._map, index * EDGE_SIZE)

    def __len__(self) -> int:
        return self.record_count

    def _bisect_left(self, key: Tuple[int, ...]) -> int:
        lo, hi = 0, self.record_count
        width = len(key)
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if self.record(mid)[:width] < key:
                lo = mid + 1
            else:
                hi = mid
        self.probes += probes
        return lo

    def range_for_prefix(self, prefix: Tuple[int, ...]) -> Tuple[int, int]:
        if not prefix:
            return (0, self.record_count)
        lo = self._bisect_left(prefix)
        hi = self._bisect_left(prefix[:-1] + (prefix[-1] + 1,))
        return (lo, hi)

    def neighbors(self, rel: int, node: int) -> Iterator[int]:
        """Ascending third-field values of the ``(rel, node)`` range."""
        lo, hi = self.range_for_prefix((rel, node))
        for index in range(lo, hi):
            yield self.record(index)[2]

    def pairs(self, rel: int) -> Iterator[Tuple[int, int]]:
        """All ``(a, b)`` pairs of one relation, in (a, b) sort order."""
        lo, hi = self.range_for_prefix((rel,))
        for index in range(lo, hi):
            record = self.record(index)
            yield (record[1], record[2])

    def has(self, rel: int, a: int, b: int) -> bool:
        lo, hi = self.range_for_prefix((rel, a, b))
        return hi > lo

    def firsts(self, rel: int) -> Iterator[int]:
        """Distinct second-field values under *rel*, by bisect jumps."""
        lo, hi = self.range_for_prefix((rel,))
        while lo < hi:
            value = self.record(lo)[1]
            yield value
            lo = self._bisect_left((rel, value + 1))

    def degree(self, rel: int, node: int) -> int:
        lo, hi = self.range_for_prefix((rel, node))
        return hi - lo


def write_index_manifest(directory: Path, manifest: dict) -> None:
    """Atomically commit the index manifest (the index's commit point)."""
    tmp = directory / (MANIFEST_FILE + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    with open(tmp, "rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp, directory / MANIFEST_FILE)


def read_index_manifest(directory: Path) -> Optional[dict]:
    """The committed manifest, or None when absent/unreadable/foreign."""
    path = Path(directory) / MANIFEST_FILE
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict):
        return None
    if manifest.get("format_version") != INDEX_FORMAT_VERSION:
        return None
    return manifest
