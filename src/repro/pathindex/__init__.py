"""Persistent path/pattern index: id-space reachability for provenance.

Built at ingest from a store's compacted segments (see
:func:`~repro.pathindex.build.build_path_index`), persisted beside the
segment files, and opened read-only through
:func:`~repro.pathindex.index.load_path_index`.  The stack reaches it
via the duck-typed ``graph.path_index()`` capability on store-backed
graphs: SPARQL property-path closures run BFS over the mmap'd adjacency
in u32 id space, the applications layer traverses the pre-composed
derivation DAG, and the generalized trie answers frequent-execution-
pattern queries over per-run activity sequences.
"""

from .build import build_path_index, run_sequences, store_files_sha
from .format import (
    FWD_FILE,
    INDEX_FORMAT_VERSION,
    INV_FILE,
    MANIFEST_FILE,
    REL_DERIVATION,
    REL_GENERATED_BY,
    REL_USED,
    REL_WAS_DERIVED_FROM,
    RELATION_NAMES,
    TRIE_FILE,
    AdjacencyReader,
)
from .index import PathIndex, load_path_index
from .trie import TrieReader, build_trie_bytes

__all__ = [
    "build_path_index",
    "run_sequences",
    "store_files_sha",
    "load_path_index",
    "PathIndex",
    "TrieReader",
    "build_trie_bytes",
    "AdjacencyReader",
    "INDEX_FORMAT_VERSION",
    "MANIFEST_FILE",
    "FWD_FILE",
    "INV_FILE",
    "TRIE_FILE",
    "RELATION_NAMES",
    "REL_USED",
    "REL_GENERATED_BY",
    "REL_WAS_DERIVED_FROM",
    "REL_DERIVATION",
]
