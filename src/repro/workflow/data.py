"""Data items flowing through workflow executions.

A :class:`DataItem` wraps a value with the metadata the provenance
exporters need: a stable content checksum, a byte size, and the semantic
type label used by Wings.  Values are deterministic functions of the run
seed and the operations applied, so re-building the corpus reproduces the
exact same artifacts (and hence byte-identical traces).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, List, Union

__all__ = ["DataItem", "make_item", "content_checksum"]


def content_checksum(value: Any) -> str:
    """Stable SHA-1 checksum of a JSON-serializable value."""
    canonical = json.dumps(value, sort_keys=True, default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DataItem:
    """An immutable data artifact produced or consumed by a step."""

    value: Any
    data_type: str = "any"

    @property
    def checksum(self) -> str:
        return content_checksum(self.value)

    @property
    def size_bytes(self) -> int:
        return len(json.dumps(self.value, default=str).encode("utf-8"))

    @property
    def is_list(self) -> bool:
        return isinstance(self.value, list)

    @property
    def depth(self) -> int:
        """List nesting depth of the value (0 for scalars)."""
        depth = 0
        value = self.value
        while isinstance(value, list):
            depth += 1
            value = value[0] if value else None
        return depth

    def preview(self, limit: int = 48) -> str:
        """Short human-readable rendering for trace labels."""
        text = json.dumps(self.value, default=str)
        return text if len(text) <= limit else text[: limit - 3] + "..."

    def __repr__(self) -> str:
        return f"DataItem({self.preview()}, type={self.data_type})"


def make_item(value: Any, data_type: str = "any") -> DataItem:
    """Wrap *value* (pass DataItem through unchanged)."""
    if isinstance(value, DataItem):
        return value
    return DataItem(value, data_type)
