"""Dataflow execution: the engine core shared by Taverna and Wings.

:class:`DataflowExecutor` runs a :class:`WorkflowTemplate` over a
:class:`SimulatedClock`, invoking each step through the service registry
and producing a :class:`RunResult` — the neutral execution record both
provenance exporters translate into their system's native RDF idiom.

Failures follow the corpus semantics: a step fault stops the run, leaving
downstream steps unexecuted, so failed runs yield exactly the truncated,
"incomplete provenance" traces the paper deliberately kept.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .data import DataItem, make_item
from .errors import ServiceFaultError, StepExecutionError, WorkflowError
from .model import Processor, WorkflowTemplate, WORKFLOW_SOURCE
from .operations import digest
from .services import FaultPlan, ServiceRegistry

__all__ = ["SimulatedClock", "StepRun", "RunResult", "DataflowExecutor"]


class SimulatedClock:
    """A deterministic clock: starts at a fixed instant, advances explicitly.

    Using simulated time keeps corpus builds byte-reproducible while still
    giving every activity realistic, strictly ordered timestamps.
    """

    def __init__(self, start: _dt.datetime):
        self._now = start

    @property
    def now(self) -> _dt.datetime:
        return self._now

    def advance(self, seconds: float) -> _dt.datetime:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now = self._now + _dt.timedelta(seconds=seconds)
        return self._now

    def reset(self, instant: _dt.datetime) -> _dt.datetime:
        """Re-seat the clock at an absolute instant.

        Used by the parallel corpus build: a worker reuses one engine
        set (and therefore one clock) across many runs, seating the
        clock at each run's exact serial-schedule start time so the
        produced timestamps are byte-identical to a sequential build.
        """
        self._now = instant
        return self._now


@dataclass
class StepRun:
    """The execution record of one processor invocation."""

    name: str
    operation: str
    service: Optional[str]
    started: _dt.datetime
    ended: Optional[_dt.datetime] = None
    inputs: Dict[str, DataItem] = field(default_factory=dict)
    outputs: Dict[str, DataItem] = field(default_factory=dict)
    status: str = "ok"  # ok | failed
    failure_cause: Optional[str] = None
    #: populated when the step is a nested sub-workflow
    child_run: Optional["RunResult"] = None
    #: populated when implicit iteration fired: one record per element
    iterations: List["StepRun"] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def iterated(self) -> bool:
        return bool(self.iterations)


@dataclass
class RunResult:
    """The complete, engine-neutral record of one workflow run."""

    run_id: str
    template: WorkflowTemplate
    started: _dt.datetime
    ended: Optional[_dt.datetime] = None
    status: str = "ok"  # ok | failed
    step_runs: List[StepRun] = field(default_factory=list)
    inputs: Dict[str, DataItem] = field(default_factory=dict)
    outputs: Dict[str, DataItem] = field(default_factory=dict)
    failed_step: Optional[str] = None
    failure_cause: Optional[str] = None
    user: str = "researcher"

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def succeeded(self) -> bool:
        return self.status == "ok"

    def step(self, name: str) -> StepRun:
        for step_run in self.step_runs:
            if step_run.name == name:
                return step_run
        raise KeyError(f"run {self.run_id} has no step {name!r}")

    def executed_steps(self) -> List[str]:
        return [s.name for s in self.step_runs]

    def unexecuted_steps(self) -> List[str]:
        """Template steps that never ran (downstream of a failure)."""
        executed = set(self.executed_steps())
        return [name for name in self.template.processors if name not in executed]


class DataflowExecutor:
    """Executes workflow templates step by step.

    One executor can run many templates; per-run state lives in locals.
    """

    def __init__(self, registry: ServiceRegistry, clock: SimulatedClock):
        self.registry = registry
        self.clock = clock

    def execute(
        self,
        template: WorkflowTemplate,
        inputs: Dict[str, Any],
        run_id: str,
        fault_plan: Optional[FaultPlan] = None,
        user: str = "researcher",
    ) -> RunResult:
        """Run *template* with workflow *inputs* (port name → value)."""
        fault_plan = fault_plan if fault_plan is not None else FaultPlan.none()
        self._check_inputs(template, inputs)
        wrapped_inputs = {
            name: make_item(value, self._input_type(template, name))
            for name, value in inputs.items()
        }
        run = RunResult(
            run_id=run_id,
            template=template,
            started=self.clock.now,
            inputs=wrapped_inputs,
            user=user,
        )
        values: Dict[tuple, DataItem] = {
            (WORKFLOW_SOURCE, name): item for name, item in wrapped_inputs.items()
        }
        for parameter in template.parameters:
            values[("param", parameter.name)] = make_item(parameter.value, parameter.data_type)

        try:
            for processor in template.topological_order():
                step_run = self._run_step(template, processor, values, run, fault_plan)
                run.step_runs.append(step_run)
                if step_run.failed:
                    run.status = "failed"
                    run.failed_step = step_run.name
                    run.failure_cause = step_run.failure_cause
                    break
                for port, item in step_run.outputs.items():
                    values[(processor.name, port)] = item
        finally:
            self.clock.advance(0.2)  # teardown
            run.ended = self.clock.now
        if run.succeeded:
            run.outputs = self._collect_outputs(template, values)
        return run

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check_inputs(template: WorkflowTemplate, inputs: Dict[str, Any]) -> None:
        expected = {p.name for p in template.inputs}
        provided = set(inputs)
        missing = expected - provided
        if missing:
            raise WorkflowError(f"missing workflow inputs: {sorted(missing)}")
        unknown = provided - expected
        if unknown:
            raise WorkflowError(f"unknown workflow inputs: {sorted(unknown)}")

    @staticmethod
    def _input_type(template: WorkflowTemplate, name: str) -> str:
        for port in template.inputs:
            if port.name == name:
                return port.data_type
        return "any"

    def _gather_step_inputs(
        self,
        template: WorkflowTemplate,
        processor: Processor,
        values: Dict[tuple, DataItem],
    ) -> Dict[str, DataItem]:
        gathered: Dict[str, DataItem] = {}
        for link in template.links_into(processor.name):
            key = (link.source.processor, link.source.port)
            if key in values:
                gathered[link.sink.port] = values[key]
        parameter_names = {p.name for p in template.parameters}
        for port in processor.inputs:
            if port.name not in gathered and port.name in parameter_names:
                gathered[port.name] = values[("param", port.name)]
        return gathered

    def _run_step(
        self,
        template: WorkflowTemplate,
        processor: Processor,
        values: Dict[tuple, DataItem],
        run: RunResult,
        fault_plan: FaultPlan,
    ) -> StepRun:
        self.clock.advance(0.1)  # dispatch overhead
        step_inputs = self._gather_step_inputs(template, processor, values)
        step_run = StepRun(
            name=processor.name,
            operation=processor.operation,
            service=processor.service,
            started=self.clock.now,
            inputs=step_inputs,
        )
        iterated_ports = self._iterated_ports(processor, step_inputs)
        if iterated_ports and not processor.is_subworkflow:
            return self._run_iterated_step(
                processor, step_inputs, iterated_ports, step_run, run, fault_plan
            )
        fault = fault_plan.fault_for(processor.name)
        if processor.is_subworkflow:
            if fault is not None:
                # A fault scheduled on the sub-workflow step itself fails
                # the dispatch before the child dataflow starts.
                try:
                    fault.raise_fault(processor.name)
                except ServiceFaultError as exc:
                    self.clock.advance(1.0)
                    step_run.ended = self.clock.now
                    step_run.status = "failed"
                    step_run.failure_cause = exc.cause
                    return step_run
            return self._run_subworkflow(processor, step_inputs, step_run, run, fault_plan)
        context = digest("invoke", run.run_id, processor.name)
        try:
            outputs, latency = self.registry.invoke(
                processor.service,
                processor.operation,
                {k: v for k, v in step_inputs.items()},
                processor.config,
                context=context,
                fault=fault,
            )
        except ServiceFaultError as exc:
            self.clock.advance(1.0)  # time burnt before the failure surfaced
            step_run.ended = self.clock.now
            step_run.status = "failed"
            step_run.failure_cause = exc.cause
            return step_run
        self.clock.advance(latency)
        step_run.ended = self.clock.now
        step_run.outputs = outputs
        return step_run

    @staticmethod
    def _iterated_ports(processor: Processor, step_inputs: Dict[str, DataItem]) -> List[str]:
        """Ports whose incoming value is one list-level deeper than declared.

        This is Taverna's *implicit iteration*: a processor expecting a
        scalar that receives a list runs once per element.
        """
        iterated = []
        for port in processor.inputs:
            item = step_inputs.get(port.name)
            if item is not None and item.depth == port.depth + 1:
                iterated.append(port.name)
        return iterated

    def _run_iterated_step(
        self,
        processor: Processor,
        step_inputs: Dict[str, DataItem],
        iterated_ports: List[str],
        step_run: StepRun,
        run: RunResult,
        fault_plan: FaultPlan,
    ) -> StepRun:
        """Implicit iteration: invoke once per element (dot product across
        multiple iterated ports), collecting outputs into lists.

        Each element invocation is recorded as its own :class:`StepRun` in
        ``step_run.iterations`` — taverna-prov publishes these as separate
        process runs — while the parent step run carries the collected
        list outputs.
        """
        lengths = [len(step_inputs[name].value) for name in iterated_ports]
        count = min(lengths)
        fault = fault_plan.fault_for(processor.name)
        collected: Dict[str, List] = {}
        for index in range(count):
            element_inputs = dict(step_inputs)
            for name in iterated_ports:
                element_inputs[name] = make_item(step_inputs[name].value[index])
            self.clock.advance(0.05)
            iteration = StepRun(
                name=f"{processor.name}_it{index}",
                operation=processor.operation,
                service=processor.service,
                started=self.clock.now,
                inputs=element_inputs,
            )
            context = digest("iterate", run.run_id, processor.name, index)
            try:
                outputs, latency = self.registry.invoke(
                    processor.service,
                    processor.operation,
                    {k: v for k, v in element_inputs.items()},
                    processor.config,
                    context=context,
                    fault=fault if index == 0 else None,
                )
            except ServiceFaultError as exc:
                self.clock.advance(1.0)
                iteration.ended = self.clock.now
                iteration.status = "failed"
                iteration.failure_cause = exc.cause
                step_run.iterations.append(iteration)
                step_run.ended = self.clock.now
                step_run.status = "failed"
                step_run.failure_cause = exc.cause
                return step_run
            self.clock.advance(latency)
            iteration.ended = self.clock.now
            iteration.outputs = outputs
            step_run.iterations.append(iteration)
            for port, item in outputs.items():
                collected.setdefault(port, []).append(item.value)
        step_run.ended = self.clock.now
        step_run.outputs = {
            port: make_item(values) for port, values in collected.items()
        }
        return step_run

    def _run_subworkflow(
        self,
        processor: Processor,
        step_inputs: Dict[str, DataItem],
        step_run: StepRun,
        run: RunResult,
        fault_plan: FaultPlan,
    ) -> StepRun:
        child_template = processor.subworkflow
        child_inputs = {name: item.value for name, item in step_inputs.items()}
        child_faults = FaultPlan(
            {
                step: fault
                for step, fault in fault_plan.faults.items()
                if step in child_template.processors
            }
        )
        child = self.execute(
            child_template,
            child_inputs,
            run_id=f"{run.run_id}/{processor.name}",
            fault_plan=child_faults,
            user=run.user,
        )
        step_run.child_run = child
        step_run.ended = self.clock.now
        if child.failed:
            step_run.status = "failed"
            step_run.failure_cause = child.failure_cause
            return step_run
        # Map the child's workflow outputs onto this step's output ports.
        step_run.outputs = {port.name: child.outputs[port.name] for port in processor.outputs}
        return step_run

    def _collect_outputs(
        self, template: WorkflowTemplate, values: Dict[tuple, DataItem]
    ) -> Dict[str, DataItem]:
        outputs: Dict[str, DataItem] = {}
        for link in template.links:
            if link.sink.is_workflow():
                key = (link.source.processor, link.source.port)
                if key in values:
                    outputs[link.sink.port] = values[key]
        return outputs
