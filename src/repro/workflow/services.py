"""Simulated service layer: the substitute for real third-party resources.

The original corpus executed workflows against live web services and local
components; 14 of its 30 failed runs were caused by third-party resource
unavailability.  This registry reproduces that environment:

* every :class:`Service` has a *kind* (``local`` components never fail on
  availability; ``rest``/``soap`` endpoints can) and a deterministic
  latency model derived from a digest of the invocation context;
* faults are injected per-invocation through a :class:`FaultPlan`, so the
  corpus builder can schedule exactly which run fails at which step and
  why — reproducing the paper's 30-failure composition deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .data import DataItem
from .errors import (
    IllegalInputError,
    ServiceFaultError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from .operations import apply_operation, digest

__all__ = ["Service", "ServiceRegistry", "FaultPlan", "InjectedFault"]

_FAULT_CLASSES = {
    ServiceUnavailableError.cause: ServiceUnavailableError,
    IllegalInputError.cause: IllegalInputError,
    ServiceTimeoutError.cause: ServiceTimeoutError,
}


@dataclass(frozen=True)
class Service:
    """A callable resource: a local component or a remote endpoint."""

    name: str
    kind: str = "local"  # local | rest | soap | component
    endpoint: Optional[str] = None
    description: str = ""
    #: deadline in simulated seconds for remote calls
    timeout_s: float = 30.0

    def __post_init__(self):
        if self.kind not in ("local", "rest", "soap", "component"):
            raise ValueError(f"unknown service kind {self.kind!r}")

    @property
    def is_remote(self) -> bool:
        return self.kind in ("rest", "soap")

    def latency_seconds(self, context: str) -> float:
        """Deterministic pseudo-latency for one invocation."""
        seed = int(digest("latency", self.name, context)[:6], 16) / 0xFFFFFF
        if self.is_remote:
            return round(0.8 + seed * 8.0, 3)  # 0.8 .. 8.8 s
        return round(0.05 + seed * 1.5, 3)  # 0.05 .. 1.55 s


@dataclass(frozen=True)
class InjectedFault:
    """A scheduled failure: *step* of one particular run fails with *cause*."""

    step: str
    cause: str  # one of errors.FAILURE_CAUSES

    def raise_fault(self, service_name: str) -> None:
        fault_cls = _FAULT_CLASSES.get(self.cause)
        if fault_cls is None:
            raise ValueError(f"unknown fault cause {self.cause!r}")
        if fault_cls is ServiceUnavailableError:
            raise fault_cls(f"service {service_name!r} did not respond")
        if fault_cls is ServiceTimeoutError:
            raise fault_cls(f"service {service_name!r} exceeded its deadline")
        raise fault_cls(f"service {service_name!r} rejected an input value")


@dataclass
class FaultPlan:
    """Faults scheduled for a single run (usually zero or one)."""

    faults: Dict[str, InjectedFault] = field(default_factory=dict)

    @classmethod
    def single(cls, step: str, cause: str) -> "FaultPlan":
        return cls({step: InjectedFault(step, cause)})

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls({})

    def fault_for(self, step: str) -> Optional[InjectedFault]:
        return self.faults.get(step)

    def __bool__(self) -> bool:
        return bool(self.faults)


class ServiceRegistry:
    """Named services plus the invocation path used by both engines."""

    #: service name used when a step does not pin an explicit service
    LOCAL = "local-component"

    def __init__(self):
        self._services: Dict[str, Service] = {}
        self.register(Service(self.LOCAL, kind="local", description="in-process component"))

    def register(self, service: Service) -> Service:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        return service

    def get(self, name: str) -> Service:
        service = self._services.get(name)
        if service is None:
            raise KeyError(f"unknown service {name!r}")
        return service

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    def names(self):
        return sorted(self._services)

    def invoke(
        self,
        service_name: Optional[str],
        operation: str,
        inputs: Dict[str, Any],
        config: Dict[str, Any],
        context: str = "",
        fault: Optional[InjectedFault] = None,
    ) -> tuple[Dict[str, DataItem], float]:
        """Invoke *operation* through a service.

        Returns ``(outputs, latency_seconds)``.  Raises a
        :class:`ServiceFaultError` subclass when *fault* is scheduled or
        the deterministic latency exceeds the service deadline.
        """
        service = self.get(service_name) if service_name is not None else self.get(self.LOCAL)
        if fault is not None:
            fault.raise_fault(service.name)
        latency = service.latency_seconds(context or operation)
        if service.is_remote and latency > service.timeout_s:
            raise ServiceTimeoutError(
                f"service {service.name!r} took {latency}s (deadline {service.timeout_s}s)"
            )
        outputs = apply_operation(operation, inputs, config)
        return outputs, latency
