"""Workflow substrate: templates, data, services, and dataflow execution.

Engine-neutral machinery shared by :mod:`repro.taverna` and
:mod:`repro.wings`: the template model (:mod:`.model`), data artifacts
(:mod:`.data`), the deterministic operation library (:mod:`.operations`),
the simulated service layer with fault injection (:mod:`.services`), and
the dataflow executor producing :class:`RunResult` records
(:mod:`.dataflow`).
"""

from .data import DataItem, make_item
from .dataflow import DataflowExecutor, RunResult, SimulatedClock, StepRun
from .errors import (
    FAILURE_CAUSES,
    IllegalInputError,
    ServiceFaultError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    StepExecutionError,
    WorkflowDefinitionError,
    WorkflowError,
)
from .model import DataLink, Parameter, Port, PortRef, Processor, WorkflowTemplate
from .operations import OPERATIONS, apply_operation, register_operation
from .services import FaultPlan, InjectedFault, Service, ServiceRegistry

__all__ = [
    "WorkflowTemplate",
    "Processor",
    "Port",
    "PortRef",
    "DataLink",
    "Parameter",
    "DataItem",
    "make_item",
    "DataflowExecutor",
    "SimulatedClock",
    "RunResult",
    "StepRun",
    "Service",
    "ServiceRegistry",
    "FaultPlan",
    "InjectedFault",
    "OPERATIONS",
    "apply_operation",
    "register_operation",
    "WorkflowError",
    "WorkflowDefinitionError",
    "ServiceFaultError",
    "ServiceUnavailableError",
    "ServiceTimeoutError",
    "IllegalInputError",
    "StepExecutionError",
    "FAILURE_CAUSES",
]
