"""The operation library: deterministic behaviors for workflow steps.

Real corpus workflows call bioinformatics services, astronomy pipelines,
text miners, and so on.  What matters for the *provenance* corpus is not
the science but that every step computes a deterministic output from its
inputs, so traces are reproducible and derivations are real.  Each
operation here is a pure function ``(inputs: dict, config: dict) -> dict``
whose outputs mix the input checksums with the operation name — distinct
inputs yield distinct outputs, identical inputs reproduce identical
outputs.

Operations validate their inputs and raise :class:`IllegalInputError` on
bad values; the corpus's illegal-input failure injections exploit this by
feeding values that fail validation.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List

from .data import DataItem, content_checksum, make_item
from .errors import IllegalInputError

__all__ = ["OPERATIONS", "apply_operation", "register_operation", "digest"]

Inputs = Dict[str, DataItem]
Outputs = Dict[str, Any]
Operation = Callable[[Inputs, Dict[str, Any]], Outputs]


def digest(*parts: Any) -> str:
    """Short stable digest mixing arbitrary values."""
    h = hashlib.sha1()
    for part in parts:
        if isinstance(part, DataItem):
            h.update(part.checksum.encode())
        else:
            h.update(repr(part).encode())
        h.update(b"|")
    return h.hexdigest()[:12]


def _single_output(name: str):
    """Decorator: wrap a scalar-returning function into an Outputs dict."""

    def wrap(fn):
        def op(inputs: Inputs, config: Dict[str, Any]) -> Outputs:
            return {name: fn(inputs, config)}

        op.__name__ = fn.__name__
        op.__doc__ = fn.__doc__
        return op

    return wrap


def _require(inputs: Inputs, *names: str) -> None:
    for name in names:
        if name not in inputs:
            raise IllegalInputError(f"missing required input {name!r}")


# -- generic transformations -------------------------------------------------

@_single_output("out")
def _identity(inputs: Inputs, config):
    """Pass the (single) input through unchanged."""
    _require(inputs)
    if len(inputs) != 1:
        raise IllegalInputError(f"identity expects exactly one input, got {len(inputs)}")
    return next(iter(inputs.values())).value


@_single_output("out")
def _transform(inputs: Inputs, config):
    """Generic 1..n-ary transformation: digest of inputs + op label."""
    label = config.get("label", "transform")
    keys = sorted(inputs)
    return f"{label}:{digest(label, *(inputs[k] for k in keys))}"


@_single_output("merged")
def _merge(inputs: Inputs, config):
    """Merge all inputs into one composite record."""
    keys = sorted(inputs)
    return {k: inputs[k].value for k in keys} | {"_merged": digest("merge", *keys)}


def _split(inputs: Inputs, config) -> Outputs:
    """Split one input into *n* parts (default 2)."""
    _require(inputs, "in")
    n = int(config.get("parts", 2))
    if n < 2:
        raise IllegalInputError("split requires parts >= 2")
    base = inputs["in"]
    return {f"part{i + 1}": f"part{i + 1}:{digest('split', base, i)}" for i in range(n)}


@_single_output("out")
def _filter(inputs: Inputs, config):
    """Filter a list input by a deterministic predicate on element digests."""
    _require(inputs, "in")
    value = inputs["in"].value
    if not isinstance(value, list):
        raise IllegalInputError("filter expects a list input")
    keep_mod = int(config.get("keep_mod", 2))
    return [v for i, v in enumerate(value) if (i + len(str(v))) % keep_mod == 0]


@_single_output("items")
def _expand(inputs: Inputs, config):
    """Expand a scalar into a list of derived elements."""
    _require(inputs, "in")
    count = int(config.get("count", 3))
    if count < 1 or count > 1000:
        raise IllegalInputError(f"expand count out of range: {count}")
    base = inputs["in"]
    return [f"item{i}:{digest('expand', base, i)}" for i in range(count)]


@_single_output("out")
def _aggregate(inputs: Inputs, config):
    """Reduce a list input to a single summary value."""
    _require(inputs, "in")
    value = inputs["in"].value
    if not isinstance(value, list):
        raise IllegalInputError("aggregate expects a list input")
    return {"count": len(value), "summary": content_checksum(value)[:12]}


# -- domain-flavoured operations ----------------------------------------------
# These behave like _transform but validate domain-plausible input shapes,
# so illegal-input failure injection has real validation to trip over.

@_single_output("sequences")
def _fetch_dataset(inputs: Inputs, config):
    """Fetch a named dataset from a (simulated) repository."""
    _require(inputs, "accession")
    accession = str(inputs["accession"].value)
    if not accession or accession.startswith("!"):
        raise IllegalInputError(f"malformed accession {accession!r}")
    count = int(config.get("records", 5))
    return [f"record:{digest('fetch', accession, i)}" for i in range(count)]


@_single_output("alignment")
def _align(inputs: Inputs, config):
    """Align a list of sequence records."""
    _require(inputs, "sequences")
    value = inputs["sequences"].value
    if not isinstance(value, list) or len(value) < 2:
        raise IllegalInputError("align needs a list of at least two records")
    return {"aligned": len(value), "matrix": digest("align", *value)}


@_single_output("model")
def _train_model(inputs: Inputs, config):
    """Fit a model on a feature table."""
    _require(inputs, "features")
    iterations = int(config.get("iterations", 10))
    if iterations <= 0:
        raise IllegalInputError("iterations must be positive")
    return {"weights": digest("train", inputs["features"], iterations), "iterations": iterations}


@_single_output("score")
def _evaluate(inputs: Inputs, config):
    """Score a model against a dataset; returns a deterministic metric."""
    _require(inputs, "model", "testset")
    seed_digest = digest("evaluate", inputs["model"], inputs["testset"])
    return round(int(seed_digest[:6], 16) / 0xFFFFFF, 6)


@_single_output("report")
def _render_report(inputs: Inputs, config):
    """Render the terminal report/plot artifact of a pipeline."""
    keys = sorted(inputs)
    return {
        "title": config.get("title", "report"),
        "body": digest("report", *(inputs[k] for k in keys)),
        "sections": len(keys),
    }


@_single_output("annotated")
def _annotate(inputs: Inputs, config):
    """Attach ontology annotations to records."""
    _require(inputs, "records")
    value = inputs["records"].value
    if not isinstance(value, list):
        raise IllegalInputError("annotate expects a list of records")
    ontology = str(config.get("ontology", "GO"))
    return [f"{v}@{ontology}:{digest('annotate', v, ontology)[:6]}" for v in value]


OPERATIONS: Dict[str, Operation] = {
    "identity": _identity,
    "transform": _transform,
    "merge": _merge,
    "split": _split,
    "filter": _filter,
    "expand": _expand,
    "aggregate": _aggregate,
    "fetch_dataset": _fetch_dataset,
    "align": _align,
    "train_model": _train_model,
    "evaluate": _evaluate,
    "render_report": _render_report,
    "annotate": _annotate,
}


def register_operation(name: str, operation: Operation) -> None:
    """Register a custom operation (domain libraries extend the base set)."""
    if name in OPERATIONS:
        raise ValueError(f"operation {name!r} already registered")
    OPERATIONS[name] = operation


def apply_operation(name: str, inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, DataItem]:
    """Invoke operation *name*; returns outputs wrapped as DataItems."""
    operation = OPERATIONS.get(name)
    if operation is None:
        raise IllegalInputError(f"unknown operation {name!r}")
    wrapped = {k: make_item(v) for k, v in inputs.items()}
    outputs = operation(wrapped, config)
    return {k: make_item(v) for k, v in outputs.items()}
