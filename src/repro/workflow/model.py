"""Workflow template model shared by the Taverna and Wings engines.

A :class:`WorkflowTemplate` is a dataflow DAG:

* workflow-level **input/output ports** (:class:`Port`);
* **processors** (steps), each with named input/output ports, an
  *operation* (resolved against the service registry at run time), and
  optionally a nested sub-workflow (Taverna supports hierarchical
  workflows; the paper notes ``prov:wasInformedBy`` "used to express the
  connection between sub-workflows");
* **data links** wiring ports together (:class:`DataLink`);
* **parameters** (Wings parameter variables) with fixed values.

Templates are engine-agnostic; engine-specific semantics (list handling,
semantic type checking) live in :mod:`repro.taverna` / :mod:`repro.wings`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import WorkflowDefinitionError

__all__ = ["Port", "PortRef", "Processor", "DataLink", "Parameter", "WorkflowTemplate"]

#: Sentinel processor names for workflow-level ports in link endpoints.
WORKFLOW_SOURCE = ""


@dataclass(frozen=True)
class Port:
    """A named input or output port.

    *data_type* is a semantic type label used by the Wings engine's
    constraint checking (Taverna ignores it); *depth* is the list depth of
    values the port carries (0 = single value), Taverna-style.
    """

    name: str
    data_type: str = "any"
    depth: int = 0

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise WorkflowDefinitionError(f"invalid port name {self.name!r}")
        if self.depth < 0:
            raise WorkflowDefinitionError("port depth must be >= 0")


@dataclass(frozen=True)
class PortRef:
    """A link endpoint: (processor name, port name).

    An empty processor name refers to the workflow's own ports: as a link
    source it is a workflow input, as a sink a workflow output.
    """

    processor: str
    port: str

    def is_workflow(self) -> bool:
        return self.processor == WORKFLOW_SOURCE

    def __str__(self) -> str:
        return f"{self.processor or '<workflow>'}:{self.port}"


@dataclass
class Processor:
    """One step of the workflow.

    *operation* names the behavior to invoke through the service registry;
    *service* optionally pins a specific registered service (third-party
    endpoint) — steps bound to remote services are the ones vulnerable to
    the availability faults the corpus injects.  *subworkflow* makes this
    a nested-workflow step (the operation is then ignored).
    """

    name: str
    operation: str = "identity"
    inputs: List[Port] = field(default_factory=list)
    outputs: List[Port] = field(default_factory=list)
    service: Optional[str] = None
    subworkflow: Optional["WorkflowTemplate"] = None
    config: Dict[str, object] = field(default_factory=dict)

    def input_port(self, name: str) -> Port:
        for port in self.inputs:
            if port.name == name:
                return port
        raise WorkflowDefinitionError(f"processor {self.name!r} has no input port {name!r}")

    def output_port(self, name: str) -> Port:
        for port in self.outputs:
            if port.name == name:
                return port
        raise WorkflowDefinitionError(f"processor {self.name!r} has no output port {name!r}")

    @property
    def is_subworkflow(self) -> bool:
        return self.subworkflow is not None


@dataclass(frozen=True)
class DataLink:
    """A directed wire from a source port to a sink port."""

    source: PortRef
    sink: PortRef


@dataclass(frozen=True)
class Parameter:
    """A Wings-style parameter variable with a fixed value."""

    name: str
    value: object
    data_type: str = "string"


class WorkflowTemplate:
    """A validated workflow DAG.

    Construction wires up processors and links; :meth:`validate` (called
    by :meth:`freeze`) checks referential integrity and acyclicity, and
    :meth:`topological_order` yields processors in executable order.
    """

    def __init__(
        self,
        template_id: str,
        name: str,
        system: str,
        domain: str = "generic",
        description: str = "",
    ):
        if system not in ("taverna", "wings"):
            raise WorkflowDefinitionError(f"unknown workflow system {system!r}")
        self.template_id = template_id
        self.name = name
        self.system = system
        self.domain = domain
        self.description = description
        self.inputs: List[Port] = []
        self.outputs: List[Port] = []
        self.parameters: List[Parameter] = []
        self.processors: Dict[str, Processor] = {}
        self.links: List[DataLink] = []
        self._frozen = False

    # -- construction -----------------------------------------------------------

    def add_input(self, name: str, data_type: str = "any", depth: int = 0) -> Port:
        port = Port(name, data_type, depth)
        self._check_unique_workflow_port(name)
        self.inputs.append(port)
        return port

    def add_output(self, name: str, data_type: str = "any", depth: int = 0) -> Port:
        port = Port(name, data_type, depth)
        self._check_unique_workflow_port(name)
        self.outputs.append(port)
        return port

    def add_parameter(self, name: str, value: object, data_type: str = "string") -> Parameter:
        parameter = Parameter(name, value, data_type)
        if any(p.name == name for p in self.parameters):
            raise WorkflowDefinitionError(f"duplicate parameter {name!r}")
        self.parameters.append(parameter)
        return parameter

    def add_processor(self, processor: Processor) -> Processor:
        if processor.name in self.processors:
            raise WorkflowDefinitionError(f"duplicate processor {processor.name!r}")
        if processor.name == WORKFLOW_SOURCE:
            raise WorkflowDefinitionError("processor name must not be empty")
        self.processors[processor.name] = processor
        return processor

    def connect(self, source: str, sink: str) -> DataLink:
        """Wire ``"proc:port"`` → ``"proc:port"`` (empty proc = workflow)."""
        link = DataLink(self._parse_ref(source), self._parse_ref(sink))
        self.links.append(link)
        return link

    @staticmethod
    def _parse_ref(text: str) -> PortRef:
        if ":" not in text:
            raise WorkflowDefinitionError(f"invalid port reference {text!r} (want 'proc:port')")
        processor, port = text.rsplit(":", 1)
        return PortRef(processor, port)

    def _check_unique_workflow_port(self, name: str) -> None:
        if any(p.name == name for p in self.inputs) or any(p.name == name for p in self.outputs):
            raise WorkflowDefinitionError(f"duplicate workflow port {name!r}")

    # -- validation ---------------------------------------------------------------

    def freeze(self) -> "WorkflowTemplate":
        """Validate and mark the template complete; returns self."""
        self.validate()
        self._frozen = True
        return self

    def validate(self) -> None:
        self._validate_links()
        self._validate_feeds()
        self.topological_order()  # raises on cycles

    def _validate_links(self) -> None:
        for link in self.links:
            self._resolve_source_port(link.source)
            self._resolve_sink_port(link.sink)

    def _resolve_source_port(self, ref: PortRef) -> Port:
        if ref.is_workflow():
            for port in self.inputs:
                if port.name == ref.port:
                    return port
            raise WorkflowDefinitionError(f"link source {ref} is not a workflow input")
        processor = self.processors.get(ref.processor)
        if processor is None:
            raise WorkflowDefinitionError(f"link source {ref}: unknown processor")
        return processor.output_port(ref.port)

    def _resolve_sink_port(self, ref: PortRef) -> Port:
        if ref.is_workflow():
            for port in self.outputs:
                if port.name == ref.port:
                    return port
            raise WorkflowDefinitionError(f"link sink {ref} is not a workflow output")
        processor = self.processors.get(ref.processor)
        if processor is None:
            raise WorkflowDefinitionError(f"link sink {ref}: unknown processor")
        return processor.input_port(ref.port)

    def _validate_feeds(self) -> None:
        """Every processor input port and workflow output must be fed."""
        fed = {(link.sink.processor, link.sink.port) for link in self.links}
        parameter_names = {p.name for p in self.parameters}
        for processor in self.processors.values():
            for port in processor.inputs:
                if (processor.name, port.name) in fed:
                    continue
                if port.name in parameter_names:
                    continue  # fed by a parameter variable
                raise WorkflowDefinitionError(
                    f"input port {processor.name}:{port.name} is not connected"
                )
        for port in self.outputs:
            if (WORKFLOW_SOURCE, port.name) not in fed:
                raise WorkflowDefinitionError(f"workflow output {port.name!r} is not connected")

    # -- analysis -------------------------------------------------------------------

    def upstream_of(self, processor_name: str) -> List[str]:
        """Names of processors that feed *processor_name* directly."""
        names = []
        for link in self.links:
            if link.sink.processor == processor_name and not link.source.is_workflow():
                if link.source.processor not in names:
                    names.append(link.source.processor)
        return names

    def downstream_of(self, processor_name: str) -> List[str]:
        """Names of processors directly fed by *processor_name*."""
        names = []
        for link in self.links:
            if link.source.processor == processor_name and not link.sink.is_workflow():
                if link.sink.processor not in names:
                    names.append(link.sink.processor)
        return names

    def topological_order(self) -> List[Processor]:
        """Processors in dependency order; raises on cycles."""
        in_degree = {name: len(self.upstream_of(name)) for name in self.processors}
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: List[Processor] = []
        while ready:
            name = ready.pop(0)
            order.append(self.processors[name])
            for downstream in self.downstream_of(name):
                in_degree[downstream] -= 1
                if in_degree[downstream] == 0:
                    ready.append(downstream)
            ready.sort()
        if len(order) != len(self.processors):
            unresolved = sorted(set(self.processors) - {p.name for p in order})
            raise WorkflowDefinitionError(f"workflow contains a cycle through {unresolved}")
        return order

    def links_into(self, processor_name: str) -> Iterator[DataLink]:
        return (l for l in self.links if l.sink.processor == processor_name)

    def links_out_of(self, processor_name: str) -> Iterator[DataLink]:
        return (l for l in self.links if l.source.processor == processor_name)

    def remote_steps(self) -> List[str]:
        """Names of steps bound to external services (fault-injection sites)."""
        return [p.name for p in self.processors.values() if p.service is not None]

    def size(self) -> Tuple[int, int]:
        """(number of processors, number of links)."""
        return (len(self.processors), len(self.links))

    def __repr__(self) -> str:
        return (
            f"<WorkflowTemplate {self.template_id} [{self.system}/{self.domain}] "
            f"{len(self.processors)} steps, {len(self.links)} links>"
        )
