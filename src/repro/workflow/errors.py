"""Failure taxonomy for workflow execution.

Section 2 of the paper: "30 workflow runs out of 198 failed for different
reasons: unavailability of third party resources, illegal input values,
etc."  These exception types reproduce those failure causes; the corpus
builder injects them at chosen dataflow positions so failed traces have
the same truncated shape as the originals.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "WorkflowError",
    "WorkflowDefinitionError",
    "ServiceFaultError",
    "ServiceUnavailableError",
    "ServiceTimeoutError",
    "IllegalInputError",
    "StepExecutionError",
    "FAILURE_CAUSES",
]


class WorkflowError(Exception):
    """Base class for all workflow errors."""


class WorkflowDefinitionError(WorkflowError):
    """The workflow template itself is malformed (bad link, cycle, ...)."""


class ServiceFaultError(WorkflowError):
    """Base class for runtime faults raised while invoking a service."""

    #: machine-readable cause label recorded in the provenance trace
    cause = "service-fault"


class ServiceUnavailableError(ServiceFaultError):
    """A third-party resource did not respond (paper's leading cause)."""

    cause = "resource-unavailable"


class ServiceTimeoutError(ServiceFaultError):
    """A service accepted the request but exceeded its deadline."""

    cause = "service-timeout"


class IllegalInputError(ServiceFaultError):
    """A service rejected an input value (paper's second failure cause)."""

    cause = "illegal-input-value"


class StepExecutionError(WorkflowError):
    """A step failed; wraps the underlying fault and names the step."""

    def __init__(self, step_name: str, fault: ServiceFaultError):
        super().__init__(f"step {step_name!r} failed: {fault}")
        self.step_name = step_name
        self.fault = fault

    def __reduce__(self):
        # args holds the formatted message, not (step_name, fault);
        # rebuild from the real fields so pickling round-trips.
        return (StepExecutionError, (self.step_name, self.fault))

    @property
    def cause(self) -> str:
        return self.fault.cause


#: Cause labels in the proportions used by the corpus builder.
FAILURE_CAUSES = (
    ServiceUnavailableError.cause,
    IllegalInputError.cause,
    ServiceTimeoutError.cause,
)
