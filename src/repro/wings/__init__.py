"""The Wings-like semantic workflow system: catalogs, engine, OPMW export.

Reproduces Wings as used by the corpus: semantic template validation
against component/data catalogs, execution through the shared dataflow
core, and OPMW/PROV-O export with execution-account bundles.
"""

from .catalog import (
    Component,
    ComponentCatalog,
    DataCatalog,
    Dataset,
    DataType,
    TypeHierarchy,
)
from .engine import OPMW_EXPORT_NS, WingsEngine, WingsRun, validate_against_catalog
from .provexport import export_run, export_template

__all__ = [
    "WingsEngine",
    "WingsRun",
    "OPMW_EXPORT_NS",
    "validate_against_catalog",
    "Component",
    "ComponentCatalog",
    "DataCatalog",
    "Dataset",
    "DataType",
    "TypeHierarchy",
    "export_run",
    "export_template",
]
