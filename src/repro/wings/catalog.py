"""Wings semantic catalogs: data types, components, and datasets.

Wings is a *semantic* workflow system: workflow templates are validated
against a component catalog (which component implements each step, with
typed inputs/outputs) and a data catalog (typed, located datasets) before
execution.  This module provides both catalogs plus the data-type
hierarchy used for subtype checking.

The data catalog is also where ``prov:atLocation`` values come from: every
dataset (and every artifact derived from one) has a file location in the
Wings workspace, which the OPMW exporter publishes — the Wings-only
``prov:atLocation`` row of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..workflow.errors import WorkflowDefinitionError

__all__ = ["DataType", "TypeHierarchy", "Component", "ComponentCatalog", "Dataset", "DataCatalog"]


@dataclass(frozen=True)
class DataType:
    """A node of the Wings data-type ontology."""

    name: str
    parent: Optional[str] = None


class TypeHierarchy:
    """The data-type tree, rooted at ``any``."""

    def __init__(self):
        self._types: Dict[str, DataType] = {"any": DataType("any", None)}

    def add(self, name: str, parent: str = "any") -> DataType:
        if name in self._types:
            raise ValueError(f"data type {name!r} already defined")
        if parent not in self._types:
            raise ValueError(f"unknown parent type {parent!r}")
        data_type = DataType(name, parent)
        self._types[name] = data_type
        return data_type

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """True when *name* equals *ancestor* or descends from it."""
        if ancestor == "any":
            return name in self._types
        current: Optional[str] = name
        while current is not None:
            if current == ancestor:
                return True
            node = self._types.get(current)
            current = node.parent if node is not None else None
        return False

    def names(self) -> List[str]:
        return sorted(self._types)


@dataclass(frozen=True)
class Component:
    """A catalogued executable component.

    *operation* names the behavior in the shared operation library;
    *input_types* / *output_types* map port names to required data types.
    """

    name: str
    operation: str
    input_types: Dict[str, str] = field(default_factory=dict)
    output_types: Dict[str, str] = field(default_factory=dict)
    version: str = "1.0"
    description: str = ""


class ComponentCatalog:
    """The registry the Wings engine validates templates against."""

    def __init__(self, types: Optional[TypeHierarchy] = None):
        self.types = types if types is not None else TypeHierarchy()
        self._components: Dict[str, Component] = {}

    def register(self, component: Component) -> Component:
        if component.name in self._components:
            raise ValueError(f"component {component.name!r} already registered")
        for port, type_name in {**component.input_types, **component.output_types}.items():
            if type_name not in self.types:
                raise ValueError(
                    f"component {component.name!r} port {port!r} uses unknown type {type_name!r}"
                )
        self._components[component.name] = component
        return component

    def get(self, name: str) -> Component:
        component = self._components.get(name)
        if component is None:
            raise KeyError(f"unknown component {name!r}")
        return component

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    def names(self) -> List[str]:
        return sorted(self._components)

    def check_binding(self, component_name: str, port: str, data_type: str, direction: str) -> None:
        """Raise unless *data_type* satisfies the component's port type."""
        component = self.get(component_name)
        table = component.input_types if direction == "input" else component.output_types
        required = table.get(port)
        if required is None:
            raise WorkflowDefinitionError(
                f"component {component_name!r} has no {direction} port {port!r}"
            )
        if not self.types.is_subtype(data_type, required):
            raise WorkflowDefinitionError(
                f"type mismatch on {component_name}.{port}: "
                f"{data_type!r} is not a subtype of {required!r}"
            )


@dataclass(frozen=True)
class Dataset:
    """A catalogued dataset with its workspace location."""

    dataset_id: str
    data_type: str
    value: Any
    location: str

    def __post_init__(self):
        if not self.location.startswith("/"):
            raise ValueError(f"dataset location must be an absolute path: {self.location!r}")


class DataCatalog:
    """Typed, located datasets available as workflow inputs."""

    WORKSPACE = "/export/wings/workspace"

    def __init__(self, types: Optional[TypeHierarchy] = None):
        self.types = types if types is not None else TypeHierarchy()
        self._datasets: Dict[str, Dataset] = {}

    def add(self, dataset_id: str, data_type: str, value: Any,
            location: Optional[str] = None) -> Dataset:
        if dataset_id in self._datasets:
            raise ValueError(f"dataset {dataset_id!r} already catalogued")
        if data_type not in self.types:
            raise ValueError(f"unknown data type {data_type!r}")
        if location is None:
            location = f"{self.WORKSPACE}/data/{dataset_id}"
        dataset = Dataset(dataset_id, data_type, value, location)
        self._datasets[dataset_id] = dataset
        return dataset

    def get(self, dataset_id: str) -> Dataset:
        dataset = self._datasets.get(dataset_id)
        if dataset is None:
            raise KeyError(f"unknown dataset {dataset_id!r}")
        return dataset

    def __contains__(self, dataset_id: str) -> bool:
        return dataset_id in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)

    def of_type(self, data_type: str) -> List[Dataset]:
        """Datasets whose type satisfies *data_type* (subtype-aware)."""
        return [
            d for d in self._datasets.values() if self.types.is_subtype(d.data_type, data_type)
        ]
