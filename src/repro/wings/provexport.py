"""Wings/OPMW export: runs → OPMW + PROV-O RDF with bundles.

Reproduces the Wings-side conventions of the paper's Tables 2 and 3:

* each run is a ``prov:Bundle`` — the OPMW *execution account* — whose
  statements live in a named graph (serialized as TriG);
* execution processes are activities **without** ``prov:startedAtTime`` /
  ``prov:endedAtTime`` ("Activity start and end not recorded in Wings
  provenance traces"); the account instead carries OPMW's own
  ``opmw:overallStartTime`` / ``opmw:overallEndTime``;
* artifacts are ``prov:wasAttributedTo`` the user (Wings is the only
  system with direct attribution) and carry ``prov:atLocation`` workspace
  paths (Wings-only row of Table 3);
* workflow outputs assert ``prov:hadPrimarySource`` against the run's
  input datasets (Wings-only row) — never plain ``prov:wasDerivedFrom``;
* ``prov:wasInfluencedBy`` is asserted **directly** between processes and
  the artifacts that influenced them (unstarred Wings cell of Table 3);
* the workflow template is published as ``opmw:WorkflowTemplate`` typed
  ``prov:Plan`` (Wings asserts the Plan class directly, unlike Taverna),
  and each process/artifact points back at its template element;
* each execution process records its executable component via
  ``opmw:hasExecutableComponent`` — this is what makes exemplar query 6
  ("what services were executed") answerable *only* on Wings traces.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..prov.model import ProvBundle, ProvDocument
from ..rdf.namespace import DCTERMS, NamespaceManager
from ..rdf.terms import IRI, Literal
from ..vocab import opmw
from ..workflow.dataflow import RunResult, StepRun
from ..workflow.model import WorkflowTemplate, WORKFLOW_SOURCE
from .engine import OPMW_EXPORT_NS, WingsRun

__all__ = ["export_run", "export_template"]


def _bind_namespaces(nsm: NamespaceManager) -> None:
    nsm.bind("opmw-export", OPMW_EXPORT_NS)


def export_run(run: WingsRun, document: Optional[ProvDocument] = None) -> ProvDocument:
    """Export one Wings run: account bundle + template linkage."""
    if document is None:
        document = ProvDocument()
    _bind_namespaces(document.namespaces)
    result = run.result

    # The account itself is declared in the document (default graph): it is
    # the bundle entity others refer to.
    account_entity = document.entity(run.account_iri)
    account_entity.add_type(opmw.WorkflowExecutionAccount)
    account_entity.add_attribute(opmw.correspondsToTemplate, run.template_iri)
    account_entity.add_attribute(opmw.overallStartTime, result.started)
    if result.ended is not None:
        account_entity.add_attribute(opmw.overallEndTime, result.ended)
    account_entity.add_attribute(
        opmw.hasStatus, Literal("FAILURE" if result.failed else "SUCCESS")
    )
    account_entity.add_attribute(opmw.executedInWorkflowSystem, run.system_iri)
    document.agent(run.system_iri, agent_type="software")

    bundle = document.bundle(run.account_iri)
    user = bundle.agent(run.user_iri(), agent_type="person")
    document.was_attributed_to(run.account_iri, run.user_iri())

    artifacts: Dict[str, IRI] = {}

    def artifact(item, template_role: Optional[str] = None) -> IRI:
        iri = run.artifact_iri(item.checksum)
        if item.checksum not in artifacts:
            entity = bundle.entity(iri)
            entity.add_type(opmw.WorkflowExecutionArtifact)
            entity.add_attribute("prov:value", Literal(item.preview()))
            entity.add_attribute(opmw.hasSize, item.size_bytes)
            entity.add_attribute(
                "prov:atLocation",
                Literal(f"/export/wings/workspace/runs/{result.run_id}/{item.checksum[:12]}.dat"),
            )
            bundle.was_attributed_to(iri, run.user_iri())
            artifacts[item.checksum] = iri
        if template_role is not None:
            bundle.elements[iri].add_attribute(
                opmw.correspondsToTemplateArtifact,
                _template_variable_iri(run.template_iri, template_role),
            )
        return artifacts[item.checksum]

    input_iris = [artifact(item, template_role=name) for name, item in result.inputs.items()]

    for step_run in result.step_runs:
        _export_step(bundle, run, step_run, artifact)

    for name, item in result.outputs.items():
        output_iri = artifact(item, template_role=name)
        # Wings-only: published results point at their primary data sources.
        for input_iri in input_iris:
            if input_iri != output_iri:
                bundle.had_primary_source(output_iri, input_iri)
    return document


def _export_step(bundle: ProvBundle, run: WingsRun, step_run: StepRun, artifact) -> None:
    process_iri = run.process_iri(step_run.name)
    # Deliberately no start/end times: Wings does not record them (Table 2).
    process = bundle.activity(process_iri)
    process.add_type(opmw.WorkflowExecutionProcess)
    process.add_attribute(opmw.isStepOfTemplate, run.account_iri)
    process.add_attribute(
        opmw.correspondsToTemplateProcess,
        _template_process_iri(run.template_iri, step_run.name),
    )
    # The semantic template names the *component*; the step run only knows
    # the underlying operation it was bound to.
    semantic_step = run.result.template.processors.get(step_run.name)
    component = semantic_step.operation if semantic_step is not None else step_run.operation
    process.add_attribute(
        opmw.hasExecutableComponent,
        OPMW_EXPORT_NS.term(f"Component/{component}"),
    )
    if step_run.failed:
        process.add_attribute(opmw.hasStatus, Literal("FAILURE"))
        process.add_attribute(DCTERMS.description, Literal(step_run.failure_cause or ""))
    else:
        process.add_attribute(opmw.hasStatus, Literal("SUCCESS"))
    bundle.was_associated_with(process_iri, run.user_iri())
    for port, item in step_run.inputs.items():
        input_iri = artifact(item)
        bundle.used(process_iri, input_iri)
        # Direct (unstarred) prov:wasInfluencedBy assertion — Wings idiom.
        bundle.was_influenced_by(process_iri, input_iri)
    for port, item in step_run.outputs.items():
        output_iri = artifact(item)
        bundle.was_generated_by(output_iri, process_iri)
        bundle.was_influenced_by(output_iri, process_iri)


def _template_process_iri(template_iri: IRI, step_name: str) -> IRI:
    return IRI(f"{template_iri.value}_process_{step_name}")


def _template_variable_iri(template_iri: IRI, variable: str) -> IRI:
    return IRI(f"{template_iri.value}_variable_{variable}")


def export_template(
    template: WorkflowTemplate, document: Optional[ProvDocument] = None
) -> ProvDocument:
    """Publish the OPMW template description (typed prov:Plan — Wings
    asserts the class directly, unlike Taverna)."""
    if document is None:
        document = ProvDocument()
    _bind_namespaces(document.namespaces)
    template_iri = OPMW_EXPORT_NS.term(f"WorkflowTemplate/{template.template_id}")
    plan = document.plan(template_iri)
    plan.add_type(opmw.WorkflowTemplate)
    plan.add_attribute(DCTERMS.title, Literal(template.name))
    plan.add_attribute(DCTERMS.description, Literal(template.description or template.name))
    plan.add_attribute(DCTERMS.subject, Literal(template.domain))
    for processor in template.processors.values():
        step = document.entity(_template_process_iri(template_iri, processor.name))
        step.add_type(opmw.WorkflowTemplateProcess)
        step.add_attribute(opmw.isStepOfTemplate, template_iri)
        step.add_attribute(DCTERMS.title, Literal(processor.name))
        step.add_attribute(
            opmw.hasExecutableComponent, OPMW_EXPORT_NS.term(f"Component/{processor.operation}")
        )
    for port in list(template.inputs) + list(template.outputs):
        variable = document.entity(_template_variable_iri(template_iri, port.name))
        variable.add_type(opmw.DataVariable)
        variable.add_attribute(opmw.isVariableOfTemplate, template_iri)
        variable.add_attribute(DCTERMS.title, Literal(port.name))
    for parameter in template.parameters:
        variable = document.entity(_template_variable_iri(template_iri, parameter.name))
        variable.add_type(opmw.ParameterVariable)
        variable.add_attribute(opmw.isVariableOfTemplate, template_iri)
        variable.add_attribute("prov:value", Literal(str(parameter.value)))
    return document
