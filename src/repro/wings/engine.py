"""The Wings-like semantic workflow engine.

Wings differs from Taverna in two ways the corpus traces reflect:

1. **Semantic validation** — before execution, every template step is
   checked against the component catalog: the step's operation must name a
   catalogued component and the port data types must satisfy the
   component's declared types (subtype-aware).  Ill-typed workflows are
   rejected at *plan* time, not run time.
2. **Execution accounts** — each run is published as an OPMW
   ``WorkflowExecutionAccount``; the account is a ``prov:Bundle``, and the
   artifacts carry catalog locations.

The engine executes through the shared dataflow core, so failure
injection, the clock, and determinism behave identically to Taverna.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..rdf.namespace import Namespace
from ..rdf.terms import IRI
from ..workflow.dataflow import DataflowExecutor, RunResult, SimulatedClock
from ..workflow.errors import WorkflowDefinitionError
from ..workflow.model import WorkflowTemplate
from ..workflow.services import FaultPlan, ServiceRegistry
from .catalog import ComponentCatalog, DataCatalog

__all__ = ["WingsEngine", "WingsRun", "OPMW_EXPORT_NS", "validate_against_catalog"]

#: Resource namespace mirroring the OPMW public export.
OPMW_EXPORT_NS = Namespace("http://www.opmw.org/export/resource/")

WINGS_AGENT_IRI = IRI("http://www.opmw.org/export/resource/Agent/WINGS")


@dataclass
class WingsRun:
    """One Wings execution: the neutral run record plus its OPMW IRIs."""

    result: RunResult
    account_iri: IRI
    template_iri: IRI
    system_iri: IRI = WINGS_AGENT_IRI
    user: str = "researcher"

    @property
    def run_id(self) -> str:
        return self.result.run_id

    @property
    def failed(self) -> bool:
        return self.result.failed

    def process_iri(self, step_name: str) -> IRI:
        return OPMW_EXPORT_NS.term(
            f"WorkflowExecutionProcess/{self.result.run_id}_{step_name}"
        )

    def artifact_iri(self, checksum: str) -> IRI:
        return OPMW_EXPORT_NS.term(
            f"WorkflowExecutionArtifact/{self.result.run_id}_{checksum[:12]}"
        )

    def user_iri(self) -> IRI:
        return OPMW_EXPORT_NS.term(f"Agent/{self.user}")


def validate_against_catalog(template: WorkflowTemplate, catalog: ComponentCatalog) -> None:
    """Semantic plan validation: every step must satisfy its component.

    Raises :class:`WorkflowDefinitionError` on unknown components or type
    mismatches — this happens before any execution, which is how Wings
    avoids the runtime type failures Taverna can hit.
    """
    for processor in template.processors.values():
        if processor.is_subworkflow:
            validate_against_catalog(processor.subworkflow, catalog)
            continue
        if processor.operation not in catalog:
            raise WorkflowDefinitionError(
                f"step {processor.name!r}: no catalogued component {processor.operation!r}"
            )
        for port in processor.inputs:
            catalog.check_binding(processor.operation, port.name, port.data_type, "input")
        for port in processor.outputs:
            catalog.check_binding(processor.operation, port.name, port.data_type, "output")


class WingsEngine:
    """Validates and executes Wings templates."""

    system_name = "wings"

    def __init__(
        self,
        registry: ServiceRegistry,
        clock: SimulatedClock,
        components: ComponentCatalog,
        data: Optional[DataCatalog] = None,
    ):
        self.registry = registry
        self.clock = clock
        self.components = components
        self.data = data if data is not None else DataCatalog(components.types)
        self._executor = DataflowExecutor(registry, clock)

    def run(
        self,
        template: WorkflowTemplate,
        inputs: Dict[str, Any],
        run_id: str,
        fault_plan: Optional[FaultPlan] = None,
        user: str = "researcher",
    ) -> WingsRun:
        """Validate then enact *template*.

        *inputs* may bind workflow ports to dataset ids from the data
        catalog (resolved to their values) or to raw values.
        """
        if template.system != self.system_name:
            raise ValueError(
                f"template {template.template_id} targets {template.system!r}, not wings"
            )
        validate_against_catalog(template, self.components)
        resolved = {name: self._resolve_input(value) for name, value in inputs.items()}
        component_ops = {
            name: self.components.get(p.operation).operation
            for name, p in template.processors.items()
            if not p.is_subworkflow
        }
        runnable = self._bind_components(template, component_ops)
        result = self._executor.execute(
            runnable, resolved, run_id=run_id, fault_plan=fault_plan, user=user
        )
        result.template = template  # publish against the semantic template
        return WingsRun(
            result=result,
            account_iri=OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{run_id}"),
            template_iri=self.template_iri(template),
            user=user,
        )

    def _resolve_input(self, value: Any) -> Any:
        if isinstance(value, str) and value in self.data:
            return self.data.get(value).value
        return value

    @staticmethod
    def _bind_components(template: WorkflowTemplate, operations: Dict[str, str]) -> WorkflowTemplate:
        """Clone the template with component names replaced by operations.

        Wings templates name *components*; the execution layer needs the
        underlying operation each component implements.
        """
        from copy import copy

        runnable = copy(template)
        runnable.processors = {}
        for name, processor in template.processors.items():
            bound = copy(processor)
            if not processor.is_subworkflow:
                bound.operation = operations[name]
            runnable.processors[name] = bound
        return runnable

    @staticmethod
    def template_iri(template: WorkflowTemplate) -> IRI:
        return OPMW_EXPORT_NS.term(f"WorkflowTemplate/{template.template_id}")
