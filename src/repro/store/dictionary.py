"""Dictionary encoding of RDF terms to dense integer ids.

The quad store never writes terms into its segment files — every quad is
four ``uint32`` ids, and this module owns the id ↔ term mapping.  On disk
the dictionary is three files:

* ``dict.heap`` — the string heap: one length-prefixed record per term,
  ``[u32 length][kind byte][payload]``, appended in id order (id *n* is
  the *n*-th record, ids start at 1; id 0 is reserved for the default
  graph in quad position ``g``);
* ``dict.off`` — a flat ``u64`` array mapping id → heap offset, so a
  decode is one seek instead of a heap scan;
* ``dict.hash`` — an open-addressing hash index of
  ``[u64 term-hash][u32 id]`` slots over the encoded term bytes, so an
  encode probe reads O(1) slots plus one heap record to confirm, without
  ever loading the full term set into memory.

All three files are read through ``mmap``; the only unbounded in-memory
state is the *delta* — terms added since the last compaction — which
:meth:`TermDictionary.compact` folds back into the persisted files.
Decoded terms are held in a bounded LRU cache (`decode_cache_size`), so a
store-backed endpoint's memory stays flat no matter how large the
dictionary grows.

Term hashing uses BLAKE2b (8-byte digest), not Python's ``hash()``:
the index is persisted, so the hash function must be stable across
processes (``PYTHONHASHSEED`` is not).
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import threading
import time
from array import array
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional

from ..rdf.terms import BlankNode, IRI, Literal, Term, XSD

__all__ = ["TermDictionary", "encode_term", "decode_term"]

# Encoded-term kind tags (first payload byte).
_KIND_IRI = 0x01
_KIND_BNODE = 0x02
_KIND_PLAIN = 0x03  # xsd:string literal, no language
_KIND_TYPED = 0x04  # any other datatype
_KIND_LANG = 0x05  # language-tagged string

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_SLOT = struct.Struct("<QI")  # (term hash, id); id 0 = empty slot

HEAP_FILE = "dict.heap"
OFFSETS_FILE = "dict.off"
HASH_FILE = "dict.hash"

#: Default capacity of the id → Term decode LRU.
DEFAULT_DECODE_CACHE_SIZE = 65536


def encode_term(term: Term) -> bytes:
    """Serialize a term to its canonical dictionary byte form."""
    if isinstance(term, IRI):
        return bytes([_KIND_IRI]) + term.value.encode("utf-8")
    if isinstance(term, BlankNode):
        return bytes([_KIND_BNODE]) + term.id.encode("utf-8")
    if isinstance(term, Literal):
        if term.language is not None:
            lang = term.language.encode("utf-8")
            return (
                bytes([_KIND_LANG, len(lang)]) + lang + term.lexical.encode("utf-8")
            )
        if term.datatype.value == XSD.STRING:
            return bytes([_KIND_PLAIN]) + term.lexical.encode("utf-8")
        dt = term.datatype.value.encode("utf-8")
        return (
            bytes([_KIND_TYPED])
            + struct.pack("<H", len(dt))
            + dt
            + term.lexical.encode("utf-8")
        )
    raise TypeError(f"cannot dictionary-encode {type(term).__name__}")


def decode_term(data: bytes) -> Term:
    """Inverse of :func:`encode_term`."""
    kind = data[0]
    if kind == _KIND_IRI:
        return IRI(data[1:].decode("utf-8"))
    if kind == _KIND_BNODE:
        return BlankNode(data[1:].decode("utf-8"))
    if kind == _KIND_PLAIN:
        return Literal(data[1:].decode("utf-8"))
    if kind == _KIND_LANG:
        lang_len = data[1]
        lang = data[2 : 2 + lang_len].decode("utf-8")
        return Literal(data[2 + lang_len :].decode("utf-8"), language=lang)
    if kind == _KIND_TYPED:
        (dt_len,) = struct.unpack_from("<H", data, 1)
        dt = data[3 : 3 + dt_len].decode("utf-8")
        return Literal(data[3 + dt_len :].decode("utf-8"), datatype=dt)
    raise ValueError(f"unknown term kind byte {kind:#x}")


def _term_hash(data: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


class TermDictionary:
    """The persisted term ↔ id mapping of one quad store.

    Lookups against the persisted portion go through the mmap'd hash
    index; terms added since the last :meth:`compact` live in the delta
    dict.  Thread-safe for concurrent readers (the endpoint shares one
    dictionary across worker threads); writes are expected from a single
    ingest thread.
    """

    def __init__(self, directory: Path, decode_cache_size: int = DEFAULT_DECODE_CACHE_SIZE):
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self._decode_cache: "OrderedDict[int, Term]" = OrderedDict()
        self.decode_cache_size = max(0, decode_cache_size)
        self.cache_hits = 0
        self.cache_misses = 0
        # Intern/lookup counters: plain ints on the hot path; mirrored
        # into the metrics registry by the endpoint's collector.
        self.intern_hits = 0  # add()/add_bytes() found an existing id
        self.intern_misses = 0  # a new id was allocated
        self.lookup_hits = 0
        self.lookup_misses = 0
        # Incremental-fold counters (see fold_delta): folds since open,
        # how many of them grew (re-bucketed) the hash table, and the
        # total wall time spent folding.
        self.fold_count = 0
        self.rehash_count = 0
        self.fold_seconds = 0.0
        # True once a fold may have left the hash table in a
        # non-canonical slot layout; compact() then rebuilds it in
        # id-insertion order so the on-disk bytes are identical to a
        # never-folded dictionary's.
        self._needs_canonical = False
        # Persisted state (mmap'd; refreshed by _open_files).
        self._heap: Optional[mmap.mmap] = None
        self._offsets: Optional[mmap.mmap] = None
        self._hash: Optional[mmap.mmap] = None
        self._hash_slots = 0
        self._persisted_count = 0
        # Delta: terms allocated since the last compaction.
        self._delta_terms: List[bytes] = []
        self._delta_lookup: Dict[bytes, int] = {}
        self._open_files()

    # -- lifecycle ----------------------------------------------------------

    def _close_maps(self) -> None:
        for attr in ("_heap", "_offsets", "_hash"):
            m = getattr(self, attr)
            if m is not None:
                m.close()
                setattr(self, attr, None)

    def _open_files(self) -> None:
        self._close_maps()
        heap_path = self.directory / HEAP_FILE
        off_path = self.directory / OFFSETS_FILE
        hash_path = self.directory / HASH_FILE
        if heap_path.exists() and heap_path.stat().st_size:
            self._heap = self._map(heap_path)
        if off_path.exists() and off_path.stat().st_size:
            self._offsets = self._map(off_path)
            self._persisted_count = len(self._offsets) // _U64.size
        else:
            self._persisted_count = 0
        if hash_path.exists() and hash_path.stat().st_size:
            self._hash = self._map(hash_path)
            self._hash_slots = len(self._hash) // _SLOT.size
        else:
            self._hash_slots = 0

    @staticmethod
    def _map(path: Path) -> mmap.mmap:
        with open(path, "rb") as handle:
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)

    def close(self) -> None:
        self._close_maps()

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return self._persisted_count + len(self._delta_terms)

    @property
    def persisted_count(self) -> int:
        return self._persisted_count

    @property
    def delta_count(self) -> int:
        return len(self._delta_terms)

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._decode_cache),
                "maxsize": self.decode_cache_size,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            }

    def intern_info(self) -> Dict[str, int]:
        """Intern/lookup hit-miss counters (process-lifetime, not persisted)."""
        return {
            "terms": len(self),
            "intern_hits": self.intern_hits,
            "intern_misses": self.intern_misses,
            "lookup_hits": self.lookup_hits,
            "lookup_misses": self.lookup_misses,
            "folds": self.fold_count,
            "rehashes": self.rehash_count,
            "fold_seconds": round(self.fold_seconds, 6),
        }

    def file_sizes(self) -> Dict[str, int]:
        sizes = {}
        for name in (HEAP_FILE, OFFSETS_FILE, HASH_FILE):
            path = self.directory / name
            sizes[name] = path.stat().st_size if path.exists() else 0
        return sizes

    # -- encode (term → id) -------------------------------------------------

    def lookup(self, term: Term) -> Optional[int]:
        """The id of *term*, or None if it has never been added."""
        data = encode_term(term)
        delta_id = self._delta_lookup.get(data)
        if delta_id is None:
            delta_id = self._probe(data)
        if delta_id is None:
            self.lookup_misses += 1
        else:
            self.lookup_hits += 1
        return delta_id

    def add(self, term: Term) -> int:
        """The id of *term*, allocating the next id if it is new."""
        return self.add_bytes(encode_term(term))

    def add_bytes(self, data: bytes) -> int:
        """The id of an already-encoded term, allocating if it is new.

        The encode step is pure (:func:`encode_term`), so parallel
        ingest workers encode terms off-process and the single-writer
        parent interns the raw bytes here.
        """
        existing = self._delta_lookup.get(data)
        if existing is None:
            existing = self._probe(data)
        if existing is not None:
            self.intern_hits += 1
            return existing
        self.intern_misses += 1
        return self.add_encoded(data)

    def add_encoded(self, data: bytes) -> int:
        """Append an encoded term to the delta; returns its new id.

        Callers (WAL replay) must guarantee the term is not already
        present — replayed TERM records were deduplicated at write time.
        """
        term_id = self._persisted_count + len(self._delta_terms) + 1
        self._delta_terms.append(data)
        self._delta_lookup[data] = term_id
        return term_id

    def rollback_to(self, count: int) -> None:
        """Discard delta terms with ids above *count* (ingest aborts).

        Only delta terms can be rolled back; persisted ids are immutable.
        """
        if count < self._persisted_count:
            raise ValueError("cannot roll back persisted terms")
        while len(self) > count:
            data = self._delta_terms.pop()
            self._delta_lookup.pop(data, None)
            with self._lock:
                self._decode_cache.pop(len(self) + 1, None)

    def _probe(self, data: bytes) -> Optional[int]:
        if self._hash is None or not self._hash_slots:
            return None
        h = _term_hash(data)
        slot = h % self._hash_slots
        for _ in range(self._hash_slots):
            stored_hash, stored_id = _SLOT.unpack_from(self._hash, slot * _SLOT.size)
            if stored_id == 0:
                return None
            # Ids beyond the persisted count are stale-future entries: a
            # crash between a fold's hash-table rename and its offsets
            # rename (the commit point) leaves them.  They are skipped,
            # not treated as hits — the terms replay from the WAL.
            if (stored_hash == h and stored_id <= self._persisted_count
                    and self._heap_record(stored_id) == data):
                return stored_id
            slot = (slot + 1) % self._hash_slots
        return None

    # -- decode (id → term) -------------------------------------------------

    def _heap_record(self, term_id: int) -> bytes:
        offset = _U64.unpack_from(self._offsets, (term_id - 1) * _U64.size)[0]
        (length,) = _U32.unpack_from(self._heap, offset)
        start = offset + _U32.size
        return self._heap[start : start + length]

    def encoded(self, term_id: int) -> bytes:
        """The raw encoded bytes of an id (persisted or delta)."""
        if term_id <= 0 or term_id > len(self):
            raise KeyError(f"term id {term_id} out of range (1..{len(self)})")
        if term_id <= self._persisted_count:
            return self._heap_record(term_id)
        return self._delta_terms[term_id - self._persisted_count - 1]

    def decode(self, term_id: int) -> Term:
        """The term for an id, via the bounded LRU decode cache."""
        with self._lock:
            cached = self._decode_cache.get(term_id)
            if cached is not None:
                self._decode_cache.move_to_end(term_id)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        term = decode_term(self.encoded(term_id))
        if self.decode_cache_size:
            with self._lock:
                self._decode_cache[term_id] = term
                while len(self._decode_cache) > self.decode_cache_size:
                    self._decode_cache.popitem(last=False)
        return term

    # -- incremental fold ---------------------------------------------------

    def _valid_heap_end(self) -> int:
        """Bytes of the heap covered by the offsets file.

        Computed from the last offset + its record length — never from
        the heap's file size, which may carry an orphan tail from a
        fold that crashed before committing its offsets.
        """
        if not self._persisted_count or self._offsets is None or self._heap is None:
            return 0
        last = _U64.unpack_from(
            self._offsets, (self._persisted_count - 1) * _U64.size
        )[0]
        (length,) = _U32.unpack_from(self._heap, last)
        return last + _U32.size + length

    def fold_delta(self) -> None:
        """Append the delta to the persisted files without a full rewrite.

        The spill-time counterpart of :meth:`compact`, O(delta) instead
        of O(total) where possible:

        * heap — delta records are appended in place (readers' mmaps of
          the old region stay valid; an orphan tail is truncated first);
        * offsets — old array copied (small: 8 bytes/term) + delta
          appended, to a tmp file;
        * hash — if the table still has room (load factor ≤ 1/2 after
          the delta) the file bytes are copied and only delta entries
          inserted; at a 2^k growth boundary the old table's (hash, id)
          pairs are re-bucketed directly — no BLAKE2b recompute, no heap
          reads — so the stall at the boundary is bounded by pure
          integer work, not hashing.

        Rename order is hash → offsets, with **offsets as the commit
        point** (``persisted_count`` is derived from its length).  A
        crash after the hash rename leaves entries pointing above the
        committed count; :meth:`_probe` skips those, and the terms
        replay from the WAL.
        """
        if not self._delta_terms:
            return
        started = time.perf_counter()
        total = len(self)
        heap_end = self._valid_heap_end()
        # New hash table (in memory first).
        needed = _next_power_of_two(max(8, total * 2))
        if needed > self._hash_slots:
            table = bytearray(needed * _SLOT.size)
            slots = needed
            if self._hash is not None:
                for h, tid in _SLOT.iter_unpack(self._hash):
                    if tid == 0:
                        continue
                    _insert_slot(table, slots, h, tid)
            self.rehash_count += 1
        else:
            slots = self._hash_slots
            table = bytearray(self._hash)
        delta_offsets = bytearray()
        heap_tail = bytearray()
        position = heap_end
        for index, data in enumerate(self._delta_terms):
            term_id = self._persisted_count + index + 1
            _insert_slot(table, slots, _term_hash(data), term_id)
            delta_offsets += _U64.pack(position)
            heap_tail += _U32.pack(len(data))
            heap_tail += data
            position += _U32.size + len(data)
        old_offsets = (
            bytes(self._offsets[: self._persisted_count * _U64.size])
            if self._offsets is not None
            else b""
        )
        self._close_maps()
        heap_path = self.directory / HEAP_FILE
        with open(heap_path, "r+b" if heap_path.exists() else "wb") as heap:
            heap.truncate(heap_end)
            heap.seek(heap_end)
            heap.write(heap_tail)
            heap.flush()
            os.fsync(heap.fileno())
        hash_tmp = self.directory / (HASH_FILE + ".tmp")
        with open(hash_tmp, "wb") as hashed:
            hashed.write(bytes(table))
            hashed.flush()
            os.fsync(hashed.fileno())
        os.replace(hash_tmp, self.directory / HASH_FILE)
        off_tmp = self.directory / (OFFSETS_FILE + ".tmp")
        with open(off_tmp, "wb") as off:
            off.write(old_offsets)
            off.write(delta_offsets)
            off.flush()
            os.fsync(off.fileno())
        os.replace(off_tmp, self.directory / OFFSETS_FILE)
        self._delta_terms.clear()
        self._delta_lookup.clear()
        self._open_files()
        self._needs_canonical = True
        self.fold_count += 1
        self.fold_seconds += time.perf_counter() - started

    # -- compaction ---------------------------------------------------------

    def compact(self) -> None:
        """Fold the delta into the persisted heap/offsets/hash files.

        Each file is rewritten to a ``.tmp`` sibling and atomically
        renamed into place; a crash mid-compaction leaves the previous
        generation intact (the store manifest is what commits a
        generation — see :mod:`repro.store.quadstore`).

        The rewrite streams record-at-a-time and rebuilds the hash
        table by inserting ids in id order (harvesting each persisted
        id's hash from the current table rather than recomputing it),
        so the output bytes are canonical — identical whether or not
        :meth:`fold_delta` ran in between — and memory stays bounded
        by the hash table, not the heap.
        """
        if (not self._delta_terms and not self._needs_canonical
                and self._heap is not None):
            return
        total = len(self)
        heap_tmp = self.directory / (HEAP_FILE + ".tmp")
        off_tmp = self.directory / (OFFSETS_FILE + ".tmp")
        hash_tmp = self.directory / (HASH_FILE + ".tmp")
        with open(heap_tmp, "wb") as heap, open(off_tmp, "wb") as off:
            position = 0
            for term_id in range(1, total + 1):
                data = self.encoded(term_id)
                off.write(_U64.pack(position))
                heap.write(_U32.pack(len(data)))
                heap.write(data)
                position += _U32.size + len(data)
            heap.flush()
            os.fsync(heap.fileno())
            off.flush()
            os.fsync(off.fileno())
        # Hashes by id: harvested from the live table for persisted ids
        # (0 is a legal-but-improbable hash; recomputed on demand below),
        # computed fresh only for the delta.
        hashes = array("Q", bytes(_U64.size * total))
        if self._hash is not None:
            for h, tid in _SLOT.iter_unpack(self._hash):
                if tid and tid <= self._persisted_count:
                    hashes[tid - 1] = h
        for index, data in enumerate(self._delta_terms):
            hashes[self._persisted_count + index] = _term_hash(data)
        slots = _next_power_of_two(max(8, total * 2))
        table = bytearray(slots * _SLOT.size)
        for term_id in range(1, total + 1):
            h = hashes[term_id - 1]
            if h == 0:
                h = _term_hash(self.encoded(term_id))
            _insert_slot(table, slots, h, term_id)
        with open(hash_tmp, "wb") as hashed:
            hashed.write(bytes(table))
            hashed.flush()
            os.fsync(hashed.fileno())
        self._close_maps()
        os.replace(heap_tmp, self.directory / HEAP_FILE)
        os.replace(off_tmp, self.directory / OFFSETS_FILE)
        os.replace(hash_tmp, self.directory / HASH_FILE)
        self._delta_terms.clear()
        self._delta_lookup.clear()
        self._needs_canonical = False
        self._open_files()


def _insert_slot(table: bytearray, slots: int, h: int, term_id: int) -> None:
    slot = h % slots
    while _SLOT.unpack_from(table, slot * _SLOT.size)[1] != 0:
        slot = (slot + 1) % slots
    _SLOT.pack_into(table, slot * _SLOT.size, h, term_id)


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power
