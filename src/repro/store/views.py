"""Read-only Graph/Dataset views over a :class:`~repro.store.quadstore.QuadStore`.

The SPARQL evaluator, the join planner's :class:`GraphStatistics`, the
property-path machinery, and the HTTP endpoint all program against the
:class:`~repro.rdf.graph.Graph` / :class:`~repro.rdf.graph.Dataset`
surface.  These views subclass both so every one of those layers runs on
a disk-backed store *unchanged*:

* :class:`StoreGraph` answers ``triples()`` / ``count()`` / ``predicates()``
  etc. by binary search over the store's sorted segments, decoding ids
  back to terms through the dictionary's bounded LRU;
* :class:`StoreDataset` maps named-graph access (``GRAPH`` patterns,
  ``quads()``) onto the ``gspo`` ordering and hands the evaluator a
  :class:`StoreGraph` union view from :meth:`union_graph`.

Views are read-only: every mutating method raises
:class:`StoreWriteError`.  ``version`` is the store's compaction
generation, so the engine's version-keyed result cache and the per-graph
statistics cache invalidate correctly if the store is ever re-ingested
behind a running endpoint.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..rdf.graph import Dataset, Graph
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import BlankNode, IRI, Term
from ..rdf.triple import Object, Predicate, Quad, Subject, Triple
from .quadstore import QuadStore

__all__ = ["StoreGraph", "StoreDataset", "StoreWriteError"]

#: Sentinel graph id for the union view (StoreGraph over all graphs).
_UNION = None


class StoreWriteError(TypeError):
    """Raised when code tries to mutate a store-backed view."""


def _read_only(*_args, **_kwargs):
    raise StoreWriteError(
        "store-backed graphs are read-only; ingest through the QuadStore API"
    )


class StoreGraph(Graph):
    """A Graph whose triples live in a QuadStore.

    ``graph_id`` selects the scope: ``None`` is the union of the default
    and all named graphs (what plain BGPs match), ``0`` the default
    graph, any other id one named graph.
    """

    def __init__(
        self,
        store: QuadStore,
        graph_id: Optional[int] = _UNION,
        identifier: Optional[Union[IRI, BlankNode]] = None,
        namespaces: Optional[NamespaceManager] = None,
    ):
        super().__init__(identifier=identifier, namespaces=namespaces)
        self._store = store
        self._graph_id = graph_id
        self._union_size: Optional[Tuple[int, int]] = None  # (generation, size)
        # term → id cache for the encoded executor; generation-keyed so a
        # re-ingest behind a live engine can never serve stale ids.
        self._encode_cache: Dict[Term, Optional[int]] = {}
        self._encode_cache_generation = store.generation

    # -- version / statistics ------------------------------------------------

    @property
    def version(self) -> int:
        return self._store.generation

    def runtime_counters(self):
        """``(bisect probes, decode-LRU hits)`` — the query profiler
        duck-types on this to attribute store work per triple pattern."""
        return self._store.runtime_counters()

    # -- read-only enforcement ----------------------------------------------

    add = _read_only
    add_all = _read_only
    remove = _read_only
    remove_pattern = _read_only
    clear = _read_only

    # -- id plumbing ---------------------------------------------------------

    #: Encode-cache capacity; cleared wholesale on overflow (queries
    #: re-touch a small working set of constants, so simple wins).
    _ENCODE_CACHE_LIMIT = 65536

    def encoded_scope(self) -> Optional[int]:
        """The scope the encoded BGP executor plans against: ``None``
        for the union view, else the graph id (0 = default graph).

        The *presence* of this method is the capability signal — the
        SPARQL layer duck-types on it and never imports repro.store.
        """
        return self._graph_id

    def segment_reader(self, name: str):
        """The store's current :class:`SegmentReader` for *name*."""
        return self._store.segment(name)

    def path_index(self):
        """The store's live path/pattern index, or None.

        Like :meth:`encoded_scope`, the *presence* of this method is the
        capability signal the property-path evaluator duck-types on.
        The index covers the union scope only — single-graph views
        return None and keep the per-graph BFS fallback, because index
        edges carry no graph attribution.
        """
        if self._graph_id is not _UNION:
            return None
        return self._store.path_index()

    def term_to_id(self, term: Term) -> Optional[int]:
        """term → id through a bounded generation-keyed cache; ``None``
        (also cached) when the dictionary has never seen the term."""
        cache = self._encode_cache
        generation = self._store.generation
        if generation != self._encode_cache_generation:
            cache.clear()
            self._encode_cache_generation = generation
        try:
            return cache[term]
        except KeyError:
            pass
        term_id = self._store.term_id(term)
        if len(cache) >= self._ENCODE_CACHE_LIMIT:
            cache.clear()
        cache[term] = term_id
        return term_id

    def id_to_term(self, term_id: int) -> Term:
        """id → term through the store's bounded decode LRU."""
        return self._store.term(term_id)

    def _encode_pattern(self, subject, predicate, obj):
        """Bound terms → ids; returns None when a bound term is unknown
        to the dictionary (the pattern can then match nothing)."""
        ids = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                term_id = self.term_to_id(term)
                if term_id is None:
                    return None
                ids.append(term_id)
        return tuple(ids)

    def _decode_triple(self, s: int, p: int, o: int) -> Triple:
        store = self._store
        return Triple(store.term(s), store.term(p), store.term(o))

    # -- pattern matching ----------------------------------------------------

    def _match_ids(self, s, p, o) -> Iterator[Tuple[int, int, int]]:
        """Yield distinct (s, p, o) id triples matching the bound ids."""
        store = self._store
        gid = self._graph_id
        if gid is _UNION:
            # Orderings keep the graph id last, so duplicates across
            # graphs are adjacent: scan_distinct_triples collapses them.
            if s is not None:
                if p is not None:
                    prefix = (s, p, o) if o is not None else (s, p)
                    yield from store.segment("spog").scan_distinct_triples(prefix)
                elif o is not None:
                    for o_, s_, p_ in store.segment("ospg").scan_distinct_triples((o, s)):
                        yield (s_, p_, o_)
                else:
                    yield from store.segment("spog").scan_distinct_triples((s,))
            elif p is not None:
                prefix = (p, o) if o is not None else (p,)
                for p_, o_, s_ in store.segment("posg").scan_distinct_triples(prefix):
                    yield (s_, p_, o_)
            elif o is not None:
                for o_, s_, p_ in store.segment("ospg").scan_distinct_triples((o,)):
                    yield (s_, p_, o_)
            else:
                yield from store.segment("spog").scan_distinct_triples(())
            return
        # Single-graph scope: gspo gives a contiguous range whenever the
        # bound fields form a (g, s[, p[, o]]) prefix; otherwise the union
        # orderings narrow the range and the graph id is filtered.
        if s is not None:
            if p is None and o is not None:
                # (s, ?, o): gspo can't include o in the prefix, ospg can.
                for o_, s_, p_, g_ in store.segment("ospg").scan((o, s)):
                    if g_ == gid:
                        yield (s_, p_, o_)
                return
            prefix = (gid, s)
            if p is not None:
                prefix += (p,)
                if o is not None:
                    prefix += (o,)
            for _, s_, p_, o_ in store.segment("gspo").scan(prefix):
                yield (s_, p_, o_)
        elif p is not None:
            prefix = (p, o) if o is not None else (p,)
            for p_, o_, s_, g_ in store.segment("posg").scan(prefix):
                if g_ == gid:
                    yield (s_, p_, o_)
        elif o is not None:
            for o_, s_, p_, g_ in store.segment("ospg").scan((o,)):
                if g_ == gid:
                    yield (s_, p_, o_)
        else:
            for _, s_, p_, o_ in store.segment("gspo").scan((gid,)):
                yield (s_, p_, o_)

    def triples(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[Predicate] = None,
        obj: Optional[Object] = None,
    ) -> Iterator[Triple]:
        encoded = self._encode_pattern(subject, predicate, obj)
        if encoded is None:
            return
        for s, p, o in self._match_ids(*encoded):
            yield self._decode_triple(s, p, o)

    def triples_scan(self, subject=None, predicate=None, obj=None) -> Iterator[Triple]:
        # The linear-scan ablation baseline has no meaning on sorted
        # segments; serve the indexed path.
        return self.triples(subject, predicate, obj)

    def count(self, subject=None, predicate=None, obj=None) -> int:
        encoded = self._encode_pattern(subject, predicate, obj)
        if encoded is None:
            return 0
        s, p, o = encoded
        store = self._store
        gid = self._graph_id
        if gid is _UNION:
            if s is None and p is None and o is None:
                return len(self)
            # Count distinct (s, p, o): O(range) lookbehind dedup, with a
            # fast path when the pattern is fully bound.
            if s is not None and p is not None and o is not None:
                return 1 if store.segment("spog").count_prefix((s, p, o)) else 0
            return sum(1 for _ in self._match_ids(s, p, o))
        if s is not None and (p is not None or o is None):
            prefix = (gid, s)
            if p is not None:
                prefix += (p,)
                if o is not None:
                    prefix += (o,)
            return store.segment("gspo").count_prefix(prefix)
        if s is None and p is None and o is None:
            return store.segment("gspo").count_prefix((gid,))
        return sum(1 for _ in self._match_ids(s, p, o))

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        store = self._store
        if self._graph_id is _UNION:
            cached = self._union_size
            if cached is not None and cached[0] == store.generation:
                return cached[1]
            size = store.segment("spog").count_distinct_triples(())
            self._union_size = (store.generation, size)
            return size
        return store.segment("gspo").count_prefix((self._graph_id,))

    def __bool__(self) -> bool:
        if self._graph_id is _UNION:
            return len(self._store.segment("spog")) > 0
        return bool(self._store.segment("gspo").count_prefix((self._graph_id,)))

    def __contains__(self, triple) -> bool:
        s, p, o = Graph._as_terms(triple)
        return self.count(s, p, o) > 0

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __repr__(self) -> str:
        if self._graph_id is _UNION:
            scope = "union"
        elif self._graph_id == 0:
            scope = "default"
        else:
            scope = self.identifier.n3() if self.identifier is not None else str(self._graph_id)
        return f"<StoreGraph {scope} @{self._store.path} gen={self.version}>"

    # -- enumeration helpers -------------------------------------------------

    def predicates(self, subject: Optional[Subject] = None) -> Iterator[Predicate]:
        if subject is not None:
            encoded = self._encode_pattern(subject, None, None)
            if encoded is None:
                return
            seen: Set[int] = set()
            for _, p, _ in self._match_ids(encoded[0], None, None):
                if p not in seen:
                    seen.add(p)
                    yield self._store.term(p)
            return
        if self._graph_id is _UNION:
            for p in self._store.segment("posg").distinct(()):
                yield self._store.term(p)
            return
        seen = set()
        for _, p, _ in self._match_ids(None, None, None):
            if p not in seen:
                seen.add(p)
                yield self._store.term(p)

    def resources(self) -> Set[Subject]:
        if self._graph_id is _UNION:
            return {self._store.term(s) for s in self._store.segment("spog").distinct(())}
        return {
            self._store.term(s)
            for s in self._store.segment("gspo").distinct((self._graph_id,))
        }

    def predicate_histogram(self) -> Dict[IRI, int]:
        histogram: Dict[IRI, int] = {}
        for _, p, _ in self._match_ids(None, None, None):
            term = self._store.term(p)
            histogram[term] = histogram.get(term, 0) + 1
        return histogram


class StoreDataset(Dataset):
    """A Dataset served from a QuadStore (read-only).

    Satisfies everything :class:`~repro.sparql.evaluator.QueryEngine`
    and :class:`~repro.endpoint.server.SparqlEndpoint` need from a
    dataset; named-graph views are created lazily and cached per name.
    """

    def __init__(self, store: QuadStore):
        namespaces = NamespaceManager()
        for prefix, base in store.prefixes.items():
            namespaces.bind(prefix, base, replace=False)
        super().__init__(namespaces=namespaces)
        self._store = store
        self.default = StoreGraph(store, graph_id=0, namespaces=self.namespaces)
        self._union: Optional[Tuple[int, StoreGraph]] = None
        self._view_cache: Dict[int, StoreGraph] = {}

    @property
    def store(self) -> QuadStore:
        return self._store

    @property
    def version(self) -> int:
        return self._store.generation

    def store_info(self) -> Dict:
        """Forwarded to the endpoint's ``/stats`` route."""
        return self._store.store_info()

    # -- read-only enforcement ----------------------------------------------

    add = _read_only
    remove_graph = _read_only

    # -- graph access --------------------------------------------------------

    def _graph_id_for(self, name: Union[IRI, BlankNode]) -> Optional[int]:
        term_id = self._store.term_id(name)
        if term_id is None or term_id not in self._store.manifest["graphs"]:
            return None
        return term_id

    def graph(self, name: Optional[Union[IRI, BlankNode]] = None) -> Graph:
        if name is None:
            return self.default
        gid = self._graph_id_for(name)
        if gid is None:
            # Unknown names yield an empty read-only graph; a store
            # cannot create graphs on first access the way an in-memory
            # Dataset does.
            empty = Graph(identifier=name, namespaces=self.namespaces)
            empty.add = _read_only  # type: ignore[method-assign]
            return empty
        view = self._view_cache.get(gid)
        if view is None:
            view = StoreGraph(
                self._store, graph_id=gid, identifier=name, namespaces=self.namespaces
            )
            self._view_cache[gid] = view
        return view

    def has_graph(self, name: Union[IRI, BlankNode]) -> bool:
        return self._graph_id_for(name) is not None

    def graph_names(self) -> List[Union[IRI, BlankNode]]:
        names = [self._store.term(gid) for gid in self._store.manifest["graphs"]]
        return sorted(names, key=lambda t: t.sort_key())

    def named_graphs(self) -> Iterator[Graph]:
        for name in self.graph_names():
            yield self.graph(name)

    def quads(
        self,
        subject=None,
        predicate=None,
        obj=None,
        graph: Optional[Union[IRI, BlankNode, bool]] = None,
    ) -> Iterator[Quad]:
        if graph is False:
            sources: List[Tuple[Optional[Union[IRI, BlankNode]], Graph]] = [
                (None, self.default)
            ]
        elif graph is None:
            sources = [(None, self.default)]
            sources.extend((name, self.graph(name)) for name in self.graph_names())
        else:
            sources = [(graph, self.graph(graph))] if self.has_graph(graph) else []
        for name, g in sources:
            for t in g.triples(subject, predicate, obj):
                yield Quad(t.subject, t.predicate, t.object, name)

    def union_graph(self) -> Graph:
        cached = self._union
        if cached is not None and cached[0] == self._store.generation:
            return cached[1]
        union = StoreGraph(self._store, graph_id=None, namespaces=self.namespaces)
        self._union = (self._store.generation, union)
        return union

    def __len__(self) -> int:
        return self._store.quad_count

    def __repr__(self) -> str:
        return (
            f"<StoreDataset {self._store.path} quads={len(self)} "
            f"named_graphs={len(self._store.manifest['graphs'])} gen={self.version}>"
        )
