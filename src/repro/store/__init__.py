"""Persistent dictionary-encoded quad store.

The disk-backed storage layer under the SPARQL query stack: a
:class:`~repro.store.quadstore.QuadStore` persists a corpus as integer
id-quads in sorted, mmap-read segment files plus a term dictionary,
written through a crash-safe WAL;
:func:`~repro.store.ingest.ingest_corpus` fills it incrementally from a
ProvBench corpus directory; and
:class:`~repro.store.views.StoreDataset` exposes the result through the
standard ``Dataset``/``Graph`` API so
:class:`~repro.sparql.evaluator.QueryEngine` and the HTTP endpoint run
on it unchanged.
"""

from .dictionary import TermDictionary, decode_term, encode_term
from .ingest import IngestReport, ingest_corpus
from .quadstore import DEFAULT_SPILL_QUAD_BUDGET, QuadStore, StoreError
from .views import StoreDataset, StoreGraph, StoreWriteError
from .wal import WriteAheadLog

__all__ = [
    "QuadStore",
    "StoreError",
    "DEFAULT_SPILL_QUAD_BUDGET",
    "StoreDataset",
    "StoreGraph",
    "StoreWriteError",
    "TermDictionary",
    "WriteAheadLog",
    "IngestReport",
    "ingest_corpus",
    "encode_term",
    "decode_term",
]
