"""The persistent quad store: dictionary + WAL + sorted segments.

One :class:`QuadStore` owns a directory:

    <store>/
      store.json   manifest: generation, counts, graph ids, prefixes,
                   ingested-file content hashes, segment record counts
      wal.log      append-only write-ahead log (see repro.store.wal)
      dict.heap / dict.off / dict.hash    term dictionary files
      spog.seg / posg.seg / ospg.seg / gspo.seg   sorted id-quad segments
      spill.json / spill-NNNNNN.<ordering>.run    spill state + sorted
                   run files, present only mid-ingest (see repro.store.spill)

Lifecycle
---------
``QuadStore(path)`` opens (creating an empty store if needed), replays
any committed WAL tail, and — if the WAL was non-empty — immediately
compacts it into fresh segments.  That replay-then-compact *is* the
crash-recovery path: a process that died mid-ingest left committed
per-file records in the WAL, and the next open folds them in; an
uncommitted tail (no trailing FILE marker, short write, bad CRC) is
truncated away and the affected source file re-ingested later because
its hash never reached the manifest.

Writes go through :meth:`begin_file` / :meth:`commit_file`; readers use
the pattern-matching accessors, which the view layer
(:mod:`repro.store.views`) adapts to the ``Graph``/``Dataset`` API.

Compaction (:meth:`compact`, called from :meth:`close`) merges the
segment records with the WAL quads, rewrites the four orderings and the
dictionary files (tmp + atomic rename each), then commits the new
generation by atomically replacing ``store.json`` and clearing the WAL.
The manifest write is the commit point; a crash anywhere before it
leaves the previous generation fully intact.

Invariants the readers rely on:

* term ids are dense, start at 1, and are never reassigned; id 0 is the
  default graph in quad position ``g``;
* every segment holds the same quad set, permuted per ordering, sorted,
  and duplicate-free;
* ``manifest["generation"]`` increases on every compaction that changed
  anything — the SPARQL result cache keys on it via
  :attr:`~repro.store.views.StoreDataset.version`.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..obs import events as _events
from ..obs import metrics as _metrics
from ..rdf.terms import Term
from . import spill as _spill_io
from .dictionary import DEFAULT_DECODE_CACHE_SIZE, TermDictionary, decode_term
from .segments import (
    ORDERINGS,
    SegmentReader,
    permute,
    segment_filename,
    write_segment_stream,
)
from .wal import WriteAheadLog

__all__ = [
    "QuadStore", "StoreError", "MANIFEST_FILE", "FORMAT_VERSION",
    "DEFAULT_SPILL_QUAD_BUDGET",
]

MANIFEST_FILE = "store.json"
FORMAT_VERSION = 1

#: Pending quads held in memory before they spill to sorted run files.
#: ~500k quad tuples is on the order of 100 MB of interpreter objects —
#: the RSS plateau of an arbitrarily large ingest.
DEFAULT_SPILL_QUAD_BUDGET = 500_000

_COMPACTION_TOTAL = _metrics.counter(
    "repro_store_compaction_total", "Store compactions that rewrote segments"
)
_COMPACTION_SECONDS = _metrics.histogram(
    "repro_store_compaction_seconds", "Store compaction wall time in seconds"
)
_SPILL_TOTAL = _metrics.counter(
    "repro_store_spill_total", "Pending-quad batches spilled to sorted run files"
)
_SPILL_QUADS = _metrics.counter(
    "repro_store_spill_quads_total", "Quad records written to spill runs"
)

Quad = Tuple[int, int, int, int]  # (s, p, o, g); g == 0 means default graph


class StoreError(RuntimeError):
    """Raised on store misuse or an unreadable/incompatible store."""


def _empty_manifest() -> Dict:
    return {
        "format_version": FORMAT_VERSION,
        "generation": 0,
        "term_count": 0,
        "quad_count": 0,
        "graphs": [],
        "prefixes": {},
        "files": {},
        "segments": {},
    }


class QuadStore:
    """A single-directory persistent quad store (see module docstring)."""

    def __init__(
        self,
        path: Path,
        decode_cache_size: int = DEFAULT_DECODE_CACHE_SIZE,
        spill_quad_budget: Optional[int] = DEFAULT_SPILL_QUAD_BUDGET,
    ):
        self.path = Path(path)
        # None or 0 disables spilling (pending quads stay in memory
        # until compaction, as before); tests force tiny budgets to
        # exercise the external-merge path on small corpora.
        self.spill_quad_budget = spill_quad_budget or 0
        self.path.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._closed = False
        manifest_path = self.path / MANIFEST_FILE
        if manifest_path.exists():
            self.manifest = json.loads(manifest_path.read_text())
            if self.manifest.get("format_version") != FORMAT_VERSION:
                raise StoreError(
                    f"unsupported store format {self.manifest.get('format_version')!r} "
                    f"at {self.path} (expected {FORMAT_VERSION})"
                )
        else:
            self.manifest = _empty_manifest()
        self.dictionary = TermDictionary(self.path, decode_cache_size=decode_cache_size)
        self.wal = WriteAheadLog(self.path)
        self._segments: Dict[str, SegmentReader] = {}
        # Cumulative bisect probes from readers retired by compaction;
        # keeps store_info() monotonic across segment rewrites.
        self._probe_totals: Dict[str, int] = dict.fromkeys(ORDERINGS, 0)
        # Readers superseded by a compaction/reset but possibly still
        # iterated by an in-flight scan.  Their mmaps stay valid after
        # the segment file is atomically replaced (the mapping pins the
        # old inode), so retiring instead of closing gives every scan a
        # consistent snapshot; close() releases them all.
        self._retired_readers: List[SegmentReader] = []
        self._open_segments()
        # Pending (WAL-committed but uncompacted) state.  Files and
        # prefixes stay cumulative across spills (they are tiny); quads
        # are flushed to spill runs whenever they exceed the budget.
        self._pending_quads: List[Quad] = []
        self._pending_files: Dict[str, str] = {}
        self._pending_prefixes: List[Tuple[str, str]] = []
        # Committed spill state (see repro.store.spill).
        self._spill_state = _spill_io.read_spill_state(self.path)
        _spill_io.remove_orphan_runs(self.path, self._spill_state)
        # Lazily opened path/pattern index for the current generation
        # (see path_index()); stale handles are closed and re-probed.
        self._path_index = None
        # In-flight file (begun, not committed).
        self._file_quads: Optional[Set[Quad]] = None
        self._file_relpath: Optional[str] = None
        self._file_digest: Optional[str] = None
        self._file_term_watermark = 0
        self._file_prefix_watermark = 0
        self._recover()

    # -- lifecycle ----------------------------------------------------------

    def _open_segments(self) -> None:
        for name, reader in self._segments.items():
            self._probe_totals[name] += reader.probes
            reader.probes = 0  # harvested; avoid double counting at close
            self._retired_readers.append(reader)
        self._segments = {
            name: SegmentReader(self.path / segment_filename(name)) for name in ORDERINGS
        }

    def _recover(self) -> None:
        # State a previous process spilled out of the WAL: the quads sit
        # in run files (merged at compaction); the file digests and
        # prefixes re-enter the pending maps here.
        spilled = bool(self._spill_state["batches"])
        if spilled:
            self._pending_files.update(self._spill_state.get("files", {}))
            for prefix, base in self._spill_state.get("prefixes", ()):
                if not any(p == prefix for p, _ in self._pending_prefixes):
                    self._pending_prefixes.append((prefix, base))
        replay = self.wal.replay()
        if replay.truncated:
            self.wal.truncate_to(replay.committed_bytes)
        if replay.empty and not spilled:
            return
        # Replay interns with dedup (add_bytes, not add_encoded): a crash
        # between a spill's state commit and its WAL clear leaves TERM
        # records for terms the spill already folded into the dictionary;
        # they must map back to their existing ids, not allocate new ones.
        for encoded in replay.terms:
            self.dictionary.add_bytes(encoded)
        self._pending_quads.extend(replay.quads)
        self._pending_files.update(replay.files)
        self._pending_prefixes.extend(
            (p, b) for p, b in replay.prefixes
            if not any(q == p for q, _ in self._pending_prefixes)
        )
        self.compact()

    def close(self) -> None:
        """Compact any pending state and release all file handles."""
        with self._lock:
            if self._closed:
                return
            if self._file_relpath is not None:
                raise StoreError(
                    f"close() during uncommitted ingest of {self._file_relpath!r}"
                )
            if self.has_pending():
                self.compact()
            if self._path_index is not None:
                self._path_index.close()
                self._path_index = None
            self.wal.close()
            self.dictionary.close()
            for reader in self._segments.values():
                reader.close()
            for reader in self._retired_readers:
                reader.close()
            self._retired_readers = []
            self._closed = True

    def __enter__(self) -> "QuadStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- identity / observability -------------------------------------------

    @property
    def generation(self) -> int:
        return self.manifest["generation"]

    @property
    def quad_count(self) -> int:
        return self.manifest["quad_count"]

    @property
    def graph_ids(self) -> List[int]:
        return list(self.manifest["graphs"])

    @property
    def prefixes(self) -> Dict[str, str]:
        return dict(self.manifest["prefixes"])

    @property
    def files(self) -> Dict[str, str]:
        """Ingested source files: relative path → sha256 content hash."""
        return dict(self.manifest["files"])

    def store_info(self) -> Dict:
        """Sizes and counters for the endpoint's ``/stats`` route.

        Holds the store lock: ``compact()``/``reset()`` swap the reader
        dict and rewrite the files this reads, so an unlocked snapshot
        could mix generations (or, before readers were retired instead
        of closed, hit a closed mmap).
        """
        with self._lock:
            return self._store_info_locked()

    def _store_info_locked(self) -> Dict:
        index = self.path_index()
        segment_sizes = {
            name: {
                "records": len(self._segments[name]),
                "bytes": (self.path / segment_filename(name)).stat().st_size
                if (self.path / segment_filename(name)).exists()
                else 0,
            }
            for name in ORDERINGS
        }
        # Runtime counters live apart from the structural sizes above:
        # "segments" must be reproducible across reopen, probe counts are
        # a property of the queries this process happened to run.
        segment_probes = {
            name: self._probe_totals[name] + self._segments[name].probes
            for name in ORDERINGS
        }
        return {
            "path": str(self.path),
            "generation": self.generation,
            "quads": self.quad_count,
            "graphs": len(self.manifest["graphs"]),
            "files": len(self.manifest["files"]),
            "terms": len(self.dictionary),
            "dictionary_bytes": self.dictionary.file_sizes(),
            "decoded_term_cache": self.dictionary.cache_info(),
            "term_dictionary": self.dictionary.intern_info(),
            "wal": {"fsyncs": self.wal.fsync_count},
            "spill": {
                "budget": self.spill_quad_budget,
                "batches": len(self._spill_state["batches"]),
                "quad_records": self._spill_state.get("quad_records", 0),
            },
            "segments": segment_sizes,
            "segment_probes": segment_probes,
            "path_index": index.info() if index is not None else None,
        }

    def runtime_counters(self) -> Tuple[int, int]:
        """``(total bisect probes, decode-LRU hits)`` as plain ints.

        The query profiler samples this before/after each scan batch to
        attribute store work to individual triple patterns; both values
        are monotonically increasing process-lifetime counters, so a
        delta between two samples is the cost of the work in between.
        """
        with self._lock:
            probes = 0
            for name in ORDERINGS:
                probes += self._probe_totals[name] + self._segments[name].probes
            return probes, self.dictionary.cache_hits

    # -- ingest (single-writer) ---------------------------------------------

    def begin_file(self, relpath: str, sha256_hex: str) -> None:
        """Start the atomic ingest of one source file."""
        with self._lock:
            if self._file_relpath is not None:
                raise StoreError(f"file ingest already in progress: {self._file_relpath!r}")
            self._file_relpath = relpath
            self._file_digest = sha256_hex
            self._file_quads = set()
            self._file_term_watermark = len(self.dictionary)
            self._file_prefix_watermark = len(self._pending_prefixes)

    def add_term(self, term: Term) -> int:
        """Intern a term, WAL-logging it if new; returns its id."""
        encoded_before = len(self.dictionary)
        term_id = self.dictionary.add(term)
        if len(self.dictionary) != encoded_before:  # newly allocated
            self.wal.append_term(self.dictionary.encoded(term_id))
        return term_id

    def add_term_encoded(self, data: bytes) -> int:
        """Intern a pre-encoded term (parallel ingest workers encode
        off-process; see :func:`repro.store.dictionary.encode_term`)."""
        encoded_before = len(self.dictionary)
        term_id = self.dictionary.add_bytes(data)
        if len(self.dictionary) != encoded_before:
            self.wal.append_term(data)
        return term_id

    def add_quad(self, s: int, p: int, o: int, g: int = 0) -> bool:
        """Add an id-quad to the in-flight file; returns True if new."""
        if self._file_quads is None:
            raise StoreError("add_quad() outside begin_file()/commit_file()")
        quad = (s, p, o, g)
        if quad in self._file_quads:
            return False
        self._file_quads.add(quad)
        self.wal.append_quad(s, p, o, g)
        return True

    def add_prefix(self, prefix: str, base: str) -> None:
        """Record a namespace binding (first binding of a prefix wins)."""
        if prefix in self.manifest["prefixes"]:
            return
        if any(p == prefix for p, _ in self._pending_prefixes):
            return
        self._pending_prefixes.append((prefix, base))
        self.wal.append_prefix(prefix, base)

    def commit_file(self) -> int:
        """Commit the in-flight file (WAL FILE marker + fsync)."""
        with self._lock:
            if self._file_relpath is None or self._file_quads is None:
                raise StoreError("commit_file() without begin_file()")
            self.wal.commit_file(self._file_relpath, self._file_digest)
            added = len(self._file_quads)
            self._pending_quads.extend(sorted(self._file_quads))
            self._pending_files[self._file_relpath] = self._file_digest
            self._file_relpath = None
            self._file_digest = None
            self._file_quads = None
            if (self.spill_quad_budget
                    and len(self._pending_quads) >= self.spill_quad_budget):
                self._spill_pending()
            return added

    def abort_file(self) -> None:
        """Drop the in-flight file: truncate the WAL back to the last
        committed FILE marker so its TERM/QUAD records never replay."""
        with self._lock:
            self._file_relpath = None
            self._file_digest = None
            self._file_quads = None
            self.dictionary.rollback_to(self._file_term_watermark)
            # Prefixes recorded during the aborted file must roll back
            # with their (truncated) WAL records, or the next compact()
            # would persist state a crash-replay would not reproduce.
            del self._pending_prefixes[self._file_prefix_watermark:]
            self.wal.close()
            replay = self.wal.replay()
            self.wal.truncate_to(replay.committed_bytes)

    def reset(self) -> None:
        """Wipe the store to empty (used when source files changed or
        disappeared and incremental append can no longer be correct)."""
        with self._lock:
            if self._file_relpath is not None:
                raise StoreError("reset() during an in-flight file ingest")
            generation = self.generation
            if self._path_index is not None:
                # Index files are unlinked with everything else below;
                # the handle would only ever report itself stale.
                self._path_index.close()
                self._path_index = None
            self.wal.close()
            self.dictionary.close()
            # Readers are retired (not closed) by _open_segments() below;
            # unlinking a mapped segment file leaves the mapping valid.
            for name in list(os.listdir(self.path)):
                if name == MANIFEST_FILE:
                    continue
                target = self.path / name
                if target.is_file():
                    target.unlink()
            self.manifest = _empty_manifest()
            # Keep the generation moving forward so version-keyed caches
            # over the old contents can never collide with the rebuild.
            self.manifest["generation"] = generation + 1
            self._write_manifest()
            self.dictionary = TermDictionary(
                self.path, decode_cache_size=self.dictionary.decode_cache_size
            )
            self.wal = WriteAheadLog(self.path)
            self._open_segments()
            self._pending_quads = []
            self._pending_files = {}
            self._pending_prefixes = []
            # Spill runs and spill.json were unlinked with everything else.
            self._spill_state = _spill_io.read_spill_state(self.path)

    # -- spilling -----------------------------------------------------------

    def _spill_pending(self) -> None:
        """Flush pending quads to sorted run files and truncate the WAL.

        Called (under the store lock) from :meth:`commit_file` when the
        pending set exceeds ``spill_quad_budget``.  The dictionary delta
        is folded into the persisted dict files at the same time, so
        after a spill the only O(corpus)-shaped memory left is gone:
        pending quads are on disk, terms are mmap'd.  ``spill.json`` is
        the commit point; the WAL clear after it is what keeps the WAL
        and the runs from double-holding the same quads on disk.
        """
        batch_id = len(self._spill_state["batches"])
        counts = _spill_io.write_spill_batch(
            self.path, batch_id, self._pending_quads
        )
        self.dictionary.fold_delta()
        state = {
            "format_version": _spill_io.SPILL_FORMAT_VERSION,
            "batches": self._spill_state["batches"]
            + [{"id": batch_id, "records": counts}],
            "files": dict(self._pending_files),
            "prefixes": [list(p) for p in self._pending_prefixes],
            "quad_records": self._spill_state.get("quad_records", 0)
            + counts["spog"],
        }
        _spill_io.write_spill_state(self.path, state)
        self._spill_state = state
        self.wal.clear()
        self._pending_quads = []
        _SPILL_TOTAL.inc()
        _SPILL_QUADS.inc(counts["spog"])
        _events.emit(
            "store.spill",
            store=str(self.path),
            batch=batch_id,
            quads=counts["spog"],
        )

    def _merged_records(self, name: str) -> Iterator[Tuple[int, int, int, int]]:
        """All records for ordering *name*: current segment, every spill
        run, and the residual pending set, k-way merged and deduplicated.

        Every source is individually sorted and duplicate-free, so the
        one-record lookbehind yields the exact sorted distinct union the
        in-memory ``sorted(set(...))`` build produced — same bytes.
        """
        sources: List[Iterator[Tuple[int, int, int, int]]] = [
            self._segments[name].scan()
        ]
        for batch in self._spill_state["batches"]:
            sources.append(_spill_io.iter_spill_run(self.path, batch["id"], name))
        if self._pending_quads:
            sources.append(
                iter(sorted({permute(q, name) for q in self._pending_quads}))
            )
        last: Optional[Tuple[int, int, int, int]] = None
        for record in heapq.merge(*sources):
            if record != last:
                last = record
                yield record

    # -- compaction ---------------------------------------------------------

    def compact(self) -> None:
        """Fold WAL + spill state into the segment + dictionary files and
        commit a new generation.  A no-op when nothing is pending."""
        with self._lock:
            if self._file_relpath is not None:
                raise StoreError("compact() during an in-flight file ingest")
            if not (self._pending_quads or self._pending_files
                    or self._pending_prefixes or self._spill_state["batches"]):
                return
            compact_started = time.perf_counter()
            # Each ordering streams through an external merge of the
            # current segment, the spill runs, and the residual pending
            # set — nothing corpus-sized is materialized.  The current
            # readers stay open across the rewrite: the tmp file +
            # atomic rename leaves their mapped inode intact, and
            # _open_segments() retires them after the new generation is
            # committed.  gspo's leading field is the graph id, so the
            # distinct non-zero graphs fall out of its stream for free.
            segment_counts: Dict[str, int] = {}
            graphs: List[int] = []
            for name in ORDERINGS:
                records = self._merged_records(name)
                if name == "gspo":
                    records = self._tap_graphs(records, graphs)
                segment_counts[name] = write_segment_stream(
                    self.path / segment_filename(name), records
                )
            quad_count = segment_counts["spog"]
            self.dictionary.compact()
            prefixes = dict(self.manifest["prefixes"])
            for prefix, base in self._pending_prefixes:
                prefixes.setdefault(prefix, base)
            files = dict(self.manifest["files"])
            files.update(self._pending_files)
            self.manifest = {
                "format_version": FORMAT_VERSION,
                "generation": self.generation + 1,
                "term_count": len(self.dictionary),
                "quad_count": quad_count,
                "graphs": graphs,
                "prefixes": prefixes,
                "files": files,
                "segments": segment_counts,
            }
            self._write_manifest()
            self.wal.clear()
            # The manifest committed the merged segments; the runs (and
            # spill.json) are now redundant and their disk comes back.
            _spill_io.remove_spill_files(self.path)
            self._spill_state = _spill_io.read_spill_state(self.path)
            self._pending_quads = []
            self._pending_files = {}
            self._pending_prefixes = []
            self._open_segments()
            _COMPACTION_TOTAL.inc()
            compact_elapsed = time.perf_counter() - compact_started
            _COMPACTION_SECONDS.observe(compact_elapsed)
            _events.emit(
                "store.compaction",
                store=str(self.path),
                generation=self.manifest["generation"],
                quads=quad_count,
                duration_s=round(compact_elapsed, 6),
            )

    @staticmethod
    def _tap_graphs(records: Iterator[Tuple[int, int, int, int]],
                    graphs: List[int]) -> Iterator[Tuple[int, int, int, int]]:
        """Collect distinct leading fields (sorted input) while passing
        records through; zero (the default graph) is skipped."""
        last = 0
        for record in records:
            g = record[0]
            if g != last:
                last = g
                if g != 0:
                    graphs.append(g)
            yield record

    def drop_files(self, relpaths: Iterable[str]) -> None:
        """Forget manifest entries for vanished source files (their quads
        are handled by the caller via :meth:`reset` + re-ingest)."""
        with self._lock:
            files = dict(self.manifest["files"])
            for relpath in relpaths:
                files.pop(relpath, None)
            self.manifest["files"] = files
            self._write_manifest()

    def _write_manifest(self) -> None:
        tmp = self.path / (MANIFEST_FILE + ".tmp")
        tmp.write_text(json.dumps(self.manifest, indent=2, sort_keys=True) + "\n")
        with open(tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, self.path / MANIFEST_FILE)

    # -- read path -----------------------------------------------------------

    def segment(self, name: str) -> SegmentReader:
        """The current reader for *name* — a stable snapshot: even if a
        compaction supersedes it mid-scan, the reader stays open (and
        its mmap valid) until :meth:`close`."""
        with self._lock:
            return self._segments[name]

    def path_index(self):
        """The live :class:`~repro.pathindex.index.PathIndex` for the
        current generation, or None when absent or stale.

        Generation keying is the whole consistency story: the index
        manifest records the generation it was built from, compaction
        and reset move the store's generation, so a stale index can
        never be served — it is simply invisible until
        :func:`~repro.pathindex.build.build_path_index` runs again
        (``ingest_corpus`` does this after its compaction).
        """
        with self._lock:
            cached = self._path_index
            if cached is not None:
                if cached.generation == self.generation:
                    return cached
                cached.close()
                self._path_index = None
            from ..pathindex import load_path_index

            index = load_path_index(self.path)
            if index is not None and index.generation != self.generation:
                index.close()
                index = None
            self._path_index = index
            return index

    def term_id(self, term: Term) -> Optional[int]:
        """Read-only term → id lookup (None when the term is unknown)."""
        return self.dictionary.lookup(term)

    def term(self, term_id: int) -> Term:
        """id → term through the bounded decode cache."""
        return self.dictionary.decode(term_id)

    def has_pending(self) -> bool:
        return bool(self._pending_quads or self._pending_files
                    or self._pending_prefixes or self._spill_state["batches"])
