"""The persistent quad store: dictionary + WAL + sorted segments.

One :class:`QuadStore` owns a directory:

    <store>/
      store.json   manifest: generation, counts, graph ids, prefixes,
                   ingested-file content hashes, segment record counts
      wal.log      append-only write-ahead log (see repro.store.wal)
      dict.heap / dict.off / dict.hash    term dictionary files
      spog.seg / posg.seg / ospg.seg / gspo.seg   sorted id-quad segments

Lifecycle
---------
``QuadStore(path)`` opens (creating an empty store if needed), replays
any committed WAL tail, and — if the WAL was non-empty — immediately
compacts it into fresh segments.  That replay-then-compact *is* the
crash-recovery path: a process that died mid-ingest left committed
per-file records in the WAL, and the next open folds them in; an
uncommitted tail (no trailing FILE marker, short write, bad CRC) is
truncated away and the affected source file re-ingested later because
its hash never reached the manifest.

Writes go through :meth:`begin_file` / :meth:`commit_file`; readers use
the pattern-matching accessors, which the view layer
(:mod:`repro.store.views`) adapts to the ``Graph``/``Dataset`` API.

Compaction (:meth:`compact`, called from :meth:`close`) merges the
segment records with the WAL quads, rewrites the four orderings and the
dictionary files (tmp + atomic rename each), then commits the new
generation by atomically replacing ``store.json`` and clearing the WAL.
The manifest write is the commit point; a crash anywhere before it
leaves the previous generation fully intact.

Invariants the readers rely on:

* term ids are dense, start at 1, and are never reassigned; id 0 is the
  default graph in quad position ``g``;
* every segment holds the same quad set, permuted per ordering, sorted,
  and duplicate-free;
* ``manifest["generation"]`` increases on every compaction that changed
  anything — the SPARQL result cache keys on it via
  :attr:`~repro.store.views.StoreDataset.version`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..obs import metrics as _metrics
from ..rdf.terms import Term
from .dictionary import DEFAULT_DECODE_CACHE_SIZE, TermDictionary, decode_term
from .segments import ORDERINGS, SegmentReader, permute, segment_filename, write_segment
from .wal import WriteAheadLog

__all__ = ["QuadStore", "StoreError", "MANIFEST_FILE", "FORMAT_VERSION"]

MANIFEST_FILE = "store.json"
FORMAT_VERSION = 1

_COMPACTION_TOTAL = _metrics.counter(
    "repro_store_compaction_total", "Store compactions that rewrote segments"
)
_COMPACTION_SECONDS = _metrics.histogram(
    "repro_store_compaction_seconds", "Store compaction wall time in seconds"
)

Quad = Tuple[int, int, int, int]  # (s, p, o, g); g == 0 means default graph


class StoreError(RuntimeError):
    """Raised on store misuse or an unreadable/incompatible store."""


def _empty_manifest() -> Dict:
    return {
        "format_version": FORMAT_VERSION,
        "generation": 0,
        "term_count": 0,
        "quad_count": 0,
        "graphs": [],
        "prefixes": {},
        "files": {},
        "segments": {},
    }


class QuadStore:
    """A single-directory persistent quad store (see module docstring)."""

    def __init__(
        self,
        path: Path,
        decode_cache_size: int = DEFAULT_DECODE_CACHE_SIZE,
    ):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._closed = False
        manifest_path = self.path / MANIFEST_FILE
        if manifest_path.exists():
            self.manifest = json.loads(manifest_path.read_text())
            if self.manifest.get("format_version") != FORMAT_VERSION:
                raise StoreError(
                    f"unsupported store format {self.manifest.get('format_version')!r} "
                    f"at {self.path} (expected {FORMAT_VERSION})"
                )
        else:
            self.manifest = _empty_manifest()
        self.dictionary = TermDictionary(self.path, decode_cache_size=decode_cache_size)
        self.wal = WriteAheadLog(self.path)
        self._segments: Dict[str, SegmentReader] = {}
        # Cumulative bisect probes from readers retired by compaction;
        # keeps store_info() monotonic across segment rewrites.
        self._probe_totals: Dict[str, int] = dict.fromkeys(ORDERINGS, 0)
        # Readers superseded by a compaction/reset but possibly still
        # iterated by an in-flight scan.  Their mmaps stay valid after
        # the segment file is atomically replaced (the mapping pins the
        # old inode), so retiring instead of closing gives every scan a
        # consistent snapshot; close() releases them all.
        self._retired_readers: List[SegmentReader] = []
        self._open_segments()
        # Pending (WAL-committed but uncompacted) state.
        self._pending_quads: List[Quad] = []
        self._pending_files: Dict[str, str] = {}
        self._pending_prefixes: List[Tuple[str, str]] = []
        # Lazily opened path/pattern index for the current generation
        # (see path_index()); stale handles are closed and re-probed.
        self._path_index = None
        # In-flight file (begun, not committed).
        self._file_quads: Optional[Set[Quad]] = None
        self._file_relpath: Optional[str] = None
        self._file_digest: Optional[str] = None
        self._file_term_watermark = 0
        self._file_prefix_watermark = 0
        self._recover()

    # -- lifecycle ----------------------------------------------------------

    def _open_segments(self) -> None:
        for name, reader in self._segments.items():
            self._probe_totals[name] += reader.probes
            reader.probes = 0  # harvested; avoid double counting at close
            self._retired_readers.append(reader)
        self._segments = {
            name: SegmentReader(self.path / segment_filename(name)) for name in ORDERINGS
        }

    def _recover(self) -> None:
        replay = self.wal.replay()
        if replay.truncated:
            self.wal.truncate_to(replay.committed_bytes)
        if replay.empty:
            return
        for encoded in replay.terms:
            self.dictionary.add_encoded(encoded)
        self._pending_quads.extend(replay.quads)
        self._pending_files.update(replay.files)
        self._pending_prefixes.extend(replay.prefixes)
        self.compact()

    def close(self) -> None:
        """Compact any pending state and release all file handles."""
        with self._lock:
            if self._closed:
                return
            if self._file_relpath is not None:
                raise StoreError(
                    f"close() during uncommitted ingest of {self._file_relpath!r}"
                )
            if self._pending_quads or self._pending_files or self._pending_prefixes:
                self.compact()
            if self._path_index is not None:
                self._path_index.close()
                self._path_index = None
            self.wal.close()
            self.dictionary.close()
            for reader in self._segments.values():
                reader.close()
            for reader in self._retired_readers:
                reader.close()
            self._retired_readers = []
            self._closed = True

    def __enter__(self) -> "QuadStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- identity / observability -------------------------------------------

    @property
    def generation(self) -> int:
        return self.manifest["generation"]

    @property
    def quad_count(self) -> int:
        return self.manifest["quad_count"]

    @property
    def graph_ids(self) -> List[int]:
        return list(self.manifest["graphs"])

    @property
    def prefixes(self) -> Dict[str, str]:
        return dict(self.manifest["prefixes"])

    @property
    def files(self) -> Dict[str, str]:
        """Ingested source files: relative path → sha256 content hash."""
        return dict(self.manifest["files"])

    def store_info(self) -> Dict:
        """Sizes and counters for the endpoint's ``/stats`` route.

        Holds the store lock: ``compact()``/``reset()`` swap the reader
        dict and rewrite the files this reads, so an unlocked snapshot
        could mix generations (or, before readers were retired instead
        of closed, hit a closed mmap).
        """
        with self._lock:
            return self._store_info_locked()

    def _store_info_locked(self) -> Dict:
        index = self.path_index()
        segment_sizes = {
            name: {
                "records": len(self._segments[name]),
                "bytes": (self.path / segment_filename(name)).stat().st_size
                if (self.path / segment_filename(name)).exists()
                else 0,
            }
            for name in ORDERINGS
        }
        # Runtime counters live apart from the structural sizes above:
        # "segments" must be reproducible across reopen, probe counts are
        # a property of the queries this process happened to run.
        segment_probes = {
            name: self._probe_totals[name] + self._segments[name].probes
            for name in ORDERINGS
        }
        return {
            "path": str(self.path),
            "generation": self.generation,
            "quads": self.quad_count,
            "graphs": len(self.manifest["graphs"]),
            "files": len(self.manifest["files"]),
            "terms": len(self.dictionary),
            "dictionary_bytes": self.dictionary.file_sizes(),
            "decoded_term_cache": self.dictionary.cache_info(),
            "term_dictionary": self.dictionary.intern_info(),
            "wal": {"fsyncs": self.wal.fsync_count},
            "segments": segment_sizes,
            "segment_probes": segment_probes,
            "path_index": index.info() if index is not None else None,
        }

    def runtime_counters(self) -> Tuple[int, int]:
        """``(total bisect probes, decode-LRU hits)`` as plain ints.

        The query profiler samples this before/after each scan batch to
        attribute store work to individual triple patterns; both values
        are monotonically increasing process-lifetime counters, so a
        delta between two samples is the cost of the work in between.
        """
        with self._lock:
            probes = 0
            for name in ORDERINGS:
                probes += self._probe_totals[name] + self._segments[name].probes
            return probes, self.dictionary.cache_hits

    # -- ingest (single-writer) ---------------------------------------------

    def begin_file(self, relpath: str, sha256_hex: str) -> None:
        """Start the atomic ingest of one source file."""
        with self._lock:
            if self._file_relpath is not None:
                raise StoreError(f"file ingest already in progress: {self._file_relpath!r}")
            self._file_relpath = relpath
            self._file_digest = sha256_hex
            self._file_quads = set()
            self._file_term_watermark = len(self.dictionary)
            self._file_prefix_watermark = len(self._pending_prefixes)

    def add_term(self, term: Term) -> int:
        """Intern a term, WAL-logging it if new; returns its id."""
        encoded_before = len(self.dictionary)
        term_id = self.dictionary.add(term)
        if len(self.dictionary) != encoded_before:  # newly allocated
            self.wal.append_term(self.dictionary.encoded(term_id))
        return term_id

    def add_term_encoded(self, data: bytes) -> int:
        """Intern a pre-encoded term (parallel ingest workers encode
        off-process; see :func:`repro.store.dictionary.encode_term`)."""
        encoded_before = len(self.dictionary)
        term_id = self.dictionary.add_bytes(data)
        if len(self.dictionary) != encoded_before:
            self.wal.append_term(data)
        return term_id

    def add_quad(self, s: int, p: int, o: int, g: int = 0) -> bool:
        """Add an id-quad to the in-flight file; returns True if new."""
        if self._file_quads is None:
            raise StoreError("add_quad() outside begin_file()/commit_file()")
        quad = (s, p, o, g)
        if quad in self._file_quads:
            return False
        self._file_quads.add(quad)
        self.wal.append_quad(s, p, o, g)
        return True

    def add_prefix(self, prefix: str, base: str) -> None:
        """Record a namespace binding (first binding of a prefix wins)."""
        if prefix in self.manifest["prefixes"]:
            return
        if any(p == prefix for p, _ in self._pending_prefixes):
            return
        self._pending_prefixes.append((prefix, base))
        self.wal.append_prefix(prefix, base)

    def commit_file(self) -> int:
        """Commit the in-flight file (WAL FILE marker + fsync)."""
        with self._lock:
            if self._file_relpath is None or self._file_quads is None:
                raise StoreError("commit_file() without begin_file()")
            self.wal.commit_file(self._file_relpath, self._file_digest)
            added = len(self._file_quads)
            self._pending_quads.extend(sorted(self._file_quads))
            self._pending_files[self._file_relpath] = self._file_digest
            self._file_relpath = None
            self._file_digest = None
            self._file_quads = None
            return added

    def abort_file(self) -> None:
        """Drop the in-flight file: truncate the WAL back to the last
        committed FILE marker so its TERM/QUAD records never replay."""
        with self._lock:
            self._file_relpath = None
            self._file_digest = None
            self._file_quads = None
            self.dictionary.rollback_to(self._file_term_watermark)
            # Prefixes recorded during the aborted file must roll back
            # with their (truncated) WAL records, or the next compact()
            # would persist state a crash-replay would not reproduce.
            del self._pending_prefixes[self._file_prefix_watermark:]
            self.wal.close()
            replay = self.wal.replay()
            self.wal.truncate_to(replay.committed_bytes)

    def reset(self) -> None:
        """Wipe the store to empty (used when source files changed or
        disappeared and incremental append can no longer be correct)."""
        with self._lock:
            if self._file_relpath is not None:
                raise StoreError("reset() during an in-flight file ingest")
            generation = self.generation
            if self._path_index is not None:
                # Index files are unlinked with everything else below;
                # the handle would only ever report itself stale.
                self._path_index.close()
                self._path_index = None
            self.wal.close()
            self.dictionary.close()
            # Readers are retired (not closed) by _open_segments() below;
            # unlinking a mapped segment file leaves the mapping valid.
            for name in list(os.listdir(self.path)):
                if name == MANIFEST_FILE:
                    continue
                target = self.path / name
                if target.is_file():
                    target.unlink()
            self.manifest = _empty_manifest()
            # Keep the generation moving forward so version-keyed caches
            # over the old contents can never collide with the rebuild.
            self.manifest["generation"] = generation + 1
            self._write_manifest()
            self.dictionary = TermDictionary(
                self.path, decode_cache_size=self.dictionary.decode_cache_size
            )
            self.wal = WriteAheadLog(self.path)
            self._open_segments()
            self._pending_quads = []
            self._pending_files = {}
            self._pending_prefixes = []

    # -- compaction ---------------------------------------------------------

    def compact(self) -> None:
        """Fold WAL state into the segment + dictionary files and commit a
        new generation.  A no-op when nothing is pending."""
        with self._lock:
            if self._file_relpath is not None:
                raise StoreError("compact() during an in-flight file ingest")
            if not (self._pending_quads or self._pending_files or self._pending_prefixes):
                return
            compact_started = time.perf_counter()
            quads: Set[Quad] = set(self._segments["spog"].scan())
            quads.update(self._pending_quads)
            ordered = {
                name: sorted(permute(q, name) for q in quads) for name in ORDERINGS
            }
            # spog records are already (s, p, o, g); the other orderings
            # permute on write so their sort order is their field order.
            # The current readers stay open across the rewrite: the tmp
            # file + atomic rename in write_segment leaves their mapped
            # inode intact, and _open_segments() retires them after the
            # new generation is committed.
            for name, records in ordered.items():
                write_segment(self.path / segment_filename(name), records)
            self.dictionary.compact()
            graphs = sorted({q[3] for q in quads if q[3] != 0})
            prefixes = dict(self.manifest["prefixes"])
            for prefix, base in self._pending_prefixes:
                prefixes.setdefault(prefix, base)
            files = dict(self.manifest["files"])
            files.update(self._pending_files)
            self.manifest = {
                "format_version": FORMAT_VERSION,
                "generation": self.generation + 1,
                "term_count": len(self.dictionary),
                "quad_count": len(quads),
                "graphs": graphs,
                "prefixes": prefixes,
                "files": files,
                "segments": {name: len(records) for name, records in ordered.items()},
            }
            self._write_manifest()
            self.wal.clear()
            self._pending_quads = []
            self._pending_files = {}
            self._pending_prefixes = []
            self._open_segments()
            _COMPACTION_TOTAL.inc()
            _COMPACTION_SECONDS.observe(time.perf_counter() - compact_started)

    def drop_files(self, relpaths: Iterable[str]) -> None:
        """Forget manifest entries for vanished source files (their quads
        are handled by the caller via :meth:`reset` + re-ingest)."""
        with self._lock:
            files = dict(self.manifest["files"])
            for relpath in relpaths:
                files.pop(relpath, None)
            self.manifest["files"] = files
            self._write_manifest()

    def _write_manifest(self) -> None:
        tmp = self.path / (MANIFEST_FILE + ".tmp")
        tmp.write_text(json.dumps(self.manifest, indent=2, sort_keys=True) + "\n")
        with open(tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, self.path / MANIFEST_FILE)

    # -- read path -----------------------------------------------------------

    def segment(self, name: str) -> SegmentReader:
        """The current reader for *name* — a stable snapshot: even if a
        compaction supersedes it mid-scan, the reader stays open (and
        its mmap valid) until :meth:`close`."""
        with self._lock:
            return self._segments[name]

    def path_index(self):
        """The live :class:`~repro.pathindex.index.PathIndex` for the
        current generation, or None when absent or stale.

        Generation keying is the whole consistency story: the index
        manifest records the generation it was built from, compaction
        and reset move the store's generation, so a stale index can
        never be served — it is simply invisible until
        :func:`~repro.pathindex.build.build_path_index` runs again
        (``ingest_corpus`` does this after its compaction).
        """
        with self._lock:
            cached = self._path_index
            if cached is not None:
                if cached.generation == self.generation:
                    return cached
                cached.close()
                self._path_index = None
            from ..pathindex import load_path_index

            index = load_path_index(self.path)
            if index is not None and index.generation != self.generation:
                index.close()
                index = None
            self._path_index = index
            return index

    def term_id(self, term: Term) -> Optional[int]:
        """Read-only term → id lookup (None when the term is unknown)."""
        return self.dictionary.lookup(term)

    def term(self, term_id: int) -> Term:
        """id → term through the bounded decode cache."""
        return self.dictionary.decode(term_id)

    def has_pending(self) -> bool:
        return bool(self._pending_quads or self._pending_files or self._pending_prefixes)
