"""Incremental corpus ingest: trace files → dictionary-encoded quads.

:func:`ingest_corpus` walks a ProvBench corpus directory (the layout
:func:`repro.corpus.storage.write_corpus` produces), hashes every trace
file, and parses **only** the files whose content hash is missing from
the store manifest.  Re-running ingest over an unchanged corpus is a
no-op — zero files parsed, zero WAL records written, generation
untouched — which is what makes ``repro-corpus store ingest`` cheap to
run after every corpus sync.

Changed or deleted files void the incremental path: segments carry no
per-file quad attribution (quads from many files merge into shared
sorted runs), so subtracting one file's contribution is impossible
without a rebuild.  In that case the store is reset and every current
file re-ingested; corpus traces are write-once artifacts in practice,
so this is the rare path and the report says when it was taken.

Each file commits atomically through the WAL (terms + quads + FILE
marker, fsynced); a crash mid-ingest loses at most the in-flight file,
which the next run re-parses because its hash never reached the
manifest.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from ..rdf.graph import Dataset
from ..rdf.trig import parse_trig
from ..rdf.turtle import TurtleError, parse_turtle
from .quadstore import QuadStore

__all__ = ["ingest_corpus", "IngestReport", "TRACE_SUFFIXES"]

#: Trace file suffixes recognized by the ingester, mapped to RDF format.
TRACE_SUFFIXES = {".prov.ttl": "turtle", ".prov.trig": "trig"}


@dataclass
class IngestReport:
    """What one :func:`ingest_corpus` run did."""

    corpus_root: str
    store_path: str
    parsed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    rebuilt: bool = False
    quads_added: int = 0
    duration_s: float = 0.0

    @property
    def no_op(self) -> bool:
        """True when the corpus was already fully ingested."""
        return not (self.parsed or self.removed or self.rebuilt)

    def summary(self) -> Dict:
        return {
            "corpus": self.corpus_root,
            "store": self.store_path,
            "parsed_files": len(self.parsed),
            "skipped_files": len(self.skipped),
            "removed_files": len(self.removed),
            "rebuilt": self.rebuilt,
            "quads_added": self.quads_added,
            "duration_s": round(self.duration_s, 3),
        }


def _discover_traces(root: Path) -> List[Tuple[str, str]]:
    """(relative path, format) for every trace file, in stable order."""
    traces: List[Tuple[str, str]] = []
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        for suffix, rdf_format in TRACE_SUFFIXES.items():
            if path.name.endswith(suffix):
                traces.append((path.relative_to(root).as_posix(), rdf_format))
                break
    return traces


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _trace_quads(text: str, rdf_format: str, relpath: str, store: QuadStore):
    """Parse one trace and yield term-quads; collects prefixes into the store.

    Turtle traces land in the default graph (graph id 0), matching how
    :meth:`repro.corpus.storage.StoredCorpus.dataset` merges them; TriG
    traces contribute their default-graph triples plus one graph per
    bundle.
    """
    if rdf_format == "turtle":
        graph = parse_turtle(text, source=relpath)
        sources = [(0, graph)]
        namespaces = graph.namespaces
    else:
        dataset: Dataset = parse_trig(text, source=relpath)
        sources = [(0, dataset.default)]
        for name in dataset.graph_names():
            sources.append((store.add_term(name), dataset.graph(name)))
        namespaces = dataset.namespaces
    for prefix, base in namespaces.namespaces():
        store.add_prefix(prefix, base)
    for gid, graph in sources:
        for t in graph:
            yield (
                store.add_term(t.subject),
                store.add_term(t.predicate),
                store.add_term(t.object),
                gid,
            )


def _ingest_file(store: QuadStore, root: Path, relpath: str, rdf_format: str, digest: str) -> int:
    store.begin_file(relpath, digest)
    try:
        added = 0
        text = (root / relpath).read_text()
        for s, p, o, g in _trace_quads(text, rdf_format, relpath, store):
            if store.add_quad(s, p, o, g):
                added += 1
    except Exception:
        store.abort_file()
        raise
    store.commit_file()
    return added


def ingest_corpus(store: QuadStore, corpus_root: Path, compact: bool = True) -> IngestReport:
    """Bring *store* up to date with the trace files under *corpus_root*.

    With ``compact=True`` (the default) the new state is folded into the
    segment files before returning, so the store is immediately
    queryable; pass ``False`` to batch several ingests into one
    compaction (``store.close()`` always compacts).
    """
    started = time.perf_counter()
    root = Path(corpus_root)
    if not root.is_dir():
        raise FileNotFoundError(f"corpus directory not found: {root}")
    report = IngestReport(corpus_root=str(root), store_path=str(store.path))
    traces = _discover_traces(root)
    known = store.files
    digests = {relpath: _file_digest(root / relpath) for relpath, _ in traces}
    on_disk = set(digests)
    changed = [rp for rp in on_disk & set(known) if digests[rp] != known[rp]]
    removed = sorted(set(known) - on_disk)
    if changed or removed:
        # Incremental append can no longer be correct: stale quads from
        # the old file contents have no per-file attribution to subtract.
        report.rebuilt = True
        report.removed = removed
        store.reset()
        known = {}
    for relpath, rdf_format in traces:
        if known.get(relpath) == digests[relpath]:
            report.skipped.append(relpath)
            continue
        report.quads_added += _ingest_file(store, root, relpath, rdf_format, digests[relpath])
        report.parsed.append(relpath)
    if compact and store.has_pending():
        store.compact()
    report.duration_s = time.perf_counter() - started
    return report
