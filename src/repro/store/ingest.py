"""Incremental corpus ingest: trace files → dictionary-encoded quads.

:func:`ingest_corpus` walks a ProvBench corpus directory (the layout
:func:`repro.corpus.storage.write_corpus` produces), hashes every trace
file, and parses **only** the files whose content hash is missing from
the store manifest.  Re-running ingest over an unchanged corpus is a
no-op — zero files parsed, zero WAL records written, generation
untouched — which is what makes ``repro-corpus store ingest`` cheap to
run after every corpus sync.

Changed or deleted files void the incremental path: segments carry no
per-file quad attribution (quads from many files merge into shared
sorted runs), so subtracting one file's contribution is impossible
without a rebuild.  In that case the store is reset and every current
file re-ingested; corpus traces are write-once artifacts in practice,
so this is the rare path and the report says when it was taken.

Each file commits atomically through the WAL (terms + quads + FILE
marker, fsynced); a crash mid-ingest loses at most the in-flight file,
which the next run re-parses because its hash never reached the
manifest.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs import shm as _shm
from ..obs import tracectx as _tracectx
from ..obs.trace import span
from ..parallel import ObsConfig, RemoteError, pool_context, resolve_jobs
from ..rdf.graph import Dataset
from ..rdf.trig import parse_trig
from ..rdf.turtle import TurtleError, parse_turtle
from .dictionary import encode_term
from .quadstore import QuadStore

__all__ = ["ingest_corpus", "IngestReport", "TRACE_SUFFIXES"]

_INGEST_FILES = _metrics.counter(
    "repro_ingest_files_total", "Trace files seen by ingest", labels=("result",)
)
for _result in ("parsed", "skipped"):
    _INGEST_FILES.labels(_result)
del _result
_INGEST_QUADS = _metrics.counter(
    "repro_ingest_quads_total", "Quads added to the store by ingest"
)
# Parse-path counters tick inside _parse_batch_inner, which is the
# *same code* whether it runs in-process (serial) or in a pool worker
# (--jobs N) — so a parallel ingest's aggregated totals sum exactly to
# the serial run's values once worker shards fold into the scrape.
_PARSE_QUADS = _metrics.counter(
    "repro_ingest_parse_quads_total",
    "Quads produced by the trace parser (pre-dedup, any process)",
)
_PARSE_TERMS = _metrics.counter(
    "repro_ingest_parse_terms_total",
    "Term intern lookups in the trace parser, by batch-local result",
    labels=("result",),
)
for _result in ("hit", "miss"):
    _PARSE_TERMS.labels(_result)
del _result

#: Trace file suffixes recognized by the ingester, mapped to RDF format.
TRACE_SUFFIXES = {".prov.ttl": "turtle", ".prov.trig": "trig"}


@dataclass
class IngestReport:
    """What one :func:`ingest_corpus` run did."""

    corpus_root: str
    store_path: str
    parsed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    rebuilt: bool = False
    quads_added: int = 0
    duration_s: float = 0.0
    #: What happened to the path/pattern index: "built" (derived fresh
    #: for this generation), "fresh" (already valid, untouched),
    #: "deferred" (store left uncompacted), or "skipped" (disabled).
    path_index: str = "skipped"

    @property
    def no_op(self) -> bool:
        """True when the corpus was already fully ingested."""
        return not (self.parsed or self.removed or self.rebuilt)

    def summary(self) -> Dict:
        return {
            "corpus": self.corpus_root,
            "store": self.store_path,
            "parsed_files": len(self.parsed),
            "skipped_files": len(self.skipped),
            "removed_files": len(self.removed),
            "rebuilt": self.rebuilt,
            "quads_added": self.quads_added,
            "duration_s": round(self.duration_s, 3),
            "path_index": self.path_index,
        }


def _discover_traces(root: Path) -> List[Tuple[str, str]]:
    """(relative path, format) for every trace file, in stable order."""
    traces: List[Tuple[str, str]] = []
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        for suffix, rdf_format in TRACE_SUFFIXES.items():
            if path.name.endswith(suffix):
                traces.append((path.relative_to(root).as_posix(), rdf_format))
                break
    return traces


def _file_digest(path: Path) -> str:
    """Streaming sha256 — constant memory regardless of trace size."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class _ParsedBatch:
    """One trace file parsed off-process into an encoded quad batch.

    ``terms`` holds the dictionary-encoded bytes of every distinct term,
    in **first-encounter order under the serial traversal** (TriG graph
    names first, then subject/predicate/object per triple) — the parent
    interns them in that exact order, so id assignment matches a serial
    ingest byte for byte.  ``quads`` reference terms by local index;
    graph position ``-1`` marks the default graph.
    """

    relpath: str
    digest: str
    terms: List[bytes]
    quads: List[Tuple[int, int, int, int]]
    prefixes: List[Tuple[str, str]]


# Worker state: the corpus root and tracer, set once per pool worker.
_INGEST_ROOT: Optional[Path] = None
_INGEST_TRACER = None


def _init_ingest_worker(root: str, obs: ObsConfig = ObsConfig()) -> None:
    global _INGEST_ROOT, _INGEST_TRACER
    _INGEST_ROOT = Path(root)
    _INGEST_TRACER = obs.make_tracer()
    obs.attach_worker()


def _parse_batch(
    root: Path, relpath: str, rdf_format: str, digest: str, tracer=None
) -> _ParsedBatch:
    """Tokenize + parse one trace into encoded terms and local-id quads.

    Uses the same traversal and term encounter order as the writer-side
    :func:`_apply_batch` intern loop, but against a process-local
    interner instead of the store, so it can run anywhere — the serial
    path calls it in-process, the parallel path in pool workers.
    """
    with span(tracer, "parse", cat="ingest", file=relpath) as parse_span:
        batch = _parse_batch_inner(root, relpath, rdf_format, digest)
        parse_span.set(terms=len(batch.terms), quads=len(batch.quads))
    return batch


def _parse_batch_inner(root: Path, relpath: str, rdf_format: str, digest: str) -> _ParsedBatch:
    text = (root / relpath).read_text()
    terms: List[bytes] = []
    index: Dict[bytes, int] = {}
    lookups = 0

    def intern(term) -> int:
        nonlocal lookups
        lookups += 1
        data = encode_term(term)
        local = index.get(data)
        if local is None:
            local = len(terms)
            index[data] = local
            terms.append(data)
        return local

    if rdf_format == "turtle":
        graph = parse_turtle(text, source=relpath)
        sources = [(-1, graph)]
        namespaces = graph.namespaces
    else:
        dataset: Dataset = parse_trig(text, source=relpath)
        sources = [(-1, dataset.default)]
        for name in dataset.graph_names():
            sources.append((intern(name), dataset.graph(name)))
        namespaces = dataset.namespaces
    prefixes = list(namespaces.namespaces())
    quads: List[Tuple[int, int, int, int]] = []
    for gid, graph in sources:
        for t in graph:
            quads.append((intern(t.subject), intern(t.predicate), intern(t.object), gid))
    _PARSE_QUADS.inc(len(quads))
    _PARSE_TERMS.labels("miss").inc(len(terms))
    _PARSE_TERMS.labels("hit").inc(lookups - len(terms))
    return _ParsedBatch(relpath, digest, terms, quads, prefixes)


def _parse_batch_task(task) -> Tuple[str, object, Optional[list]]:
    """Pool task: parse one file, ship the batch plus any trace events.

    Workers drain their tracer per task; the parent absorbs the events
    in plan (file) order, so the merged trace is ordered like a serial
    run no matter which worker parsed what.
    """
    relpath, rdf_format, digest = task
    tracer = _INGEST_TRACER
    if tracer is not None:
        tracer.reset_clock()
    try:
        # Phase-scoped trace derivation ("parse:<file>"): the parent
        # applies the batch under its own "apply:<file>" scope, so both
        # phases mint the same span ids at any worker count.
        with _tracectx.task_scope(f"parse:{relpath}"):
            batch = _parse_batch(_INGEST_ROOT, relpath, rdf_format, digest, tracer=tracer)
        # Per-task publication: the pool is terminated (not joined) on
        # exit, so this is the last guaranteed flush before the parent's
        # orphan sweep folds this worker's shard.
        _shm.flush()
        return ("ok", batch, tracer.drain() if tracer is not None else None)
    except Exception as exc:
        if tracer is not None:
            tracer.drain()
        _shm.flush()
        return ("error", RemoteError.capture(exc, f"while ingesting {relpath}"), None)


def _apply_batch(store: QuadStore, batch: _ParsedBatch, tracer=None) -> int:
    """Commit one parsed batch: single-writer intern + WAL."""
    store.begin_file(batch.relpath, batch.digest)
    try:
        with span(tracer, "intern", cat="ingest", file=batch.relpath) as intern_span:
            ids = [store.add_term_encoded(data) for data in batch.terms]
            for prefix, base in batch.prefixes:
                store.add_prefix(prefix, base)
            added = 0
            for s, p, o, g in batch.quads:
                gid = 0 if g < 0 else ids[g]
                if store.add_quad(ids[s], ids[p], ids[o], gid):
                    added += 1
            intern_span.set(terms=len(batch.terms), quads=added)
    except Exception:
        store.abort_file()
        raise
    with span(tracer, "wal-commit", cat="ingest", file=batch.relpath):
        store.commit_file()
    return added


def ingest_corpus(
    store: QuadStore, corpus_root: Path, compact: bool = True, jobs: int = 1,
    tracer=None, path_index: bool = True, on_file=None,
) -> IngestReport:
    """Bring *store* up to date with the trace files under *corpus_root*.

    With ``compact=True`` (the default) the new state is folded into the
    segment files before returning, so the store is immediately
    queryable; pass ``False`` to batch several ingests into one
    compaction (``store.close()`` always compacts).

    With ``jobs > 1`` (``None``/``0`` = one worker per CPU), trace files
    are tokenized and parsed into encoded quad batches in worker
    processes — parsing is pure CPU — while this process stays the
    single writer: it owns the :class:`TermDictionary` and WAL, interning
    and committing each batch in deterministic file order, so segments
    come out byte-identical to a serial ingest.

    With a *tracer*, each file emits ``parse`` / ``intern`` /
    ``wal-commit`` spans (plus one ``compact`` span per run); parallel
    workers forward their parse spans with each batch, so the merged
    trace covers every file regardless of job count.

    With ``path_index=True`` (the default) the path/pattern index is
    (re)built after compaction whenever the committed generation has no
    valid index — an unchanged corpus keeps generation and index alike,
    so the no-op re-ingest stays a no-op.  The index derives purely from
    the segment files, so it is byte-identical at any job count.

    *on_file*, when given, is called as ``on_file(done, total,
    quads_added)`` after each file commits (progress reporting); the
    ``repro_ingest_quads_total`` counter also ticks per file, so a
    :class:`repro.obs.Progress` can rate the live ingest off it.
    """
    started = time.perf_counter()
    root = Path(corpus_root)
    if not root.is_dir():
        raise FileNotFoundError(f"corpus directory not found: {root}")
    report = IngestReport(corpus_root=str(root), store_path=str(store.path))
    traces = _discover_traces(root)
    known = store.files
    digests = {relpath: _file_digest(root / relpath) for relpath, _ in traces}
    on_disk = set(digests)
    changed = [rp for rp in on_disk & set(known) if digests[rp] != known[rp]]
    removed = sorted(set(known) - on_disk)
    if changed or removed:
        # Incremental append can no longer be correct: stale quads from
        # the old file contents have no per-file attribution to subtract.
        report.rebuilt = True
        report.removed = removed
        store.reset()
        known = {}
    pending = [
        (relpath, rdf_format)
        for relpath, rdf_format in traces
        if known.get(relpath) != digests[relpath]
    ]
    report.skipped = [rp for rp, _ in traces if known.get(rp) == digests[rp]]
    effective = jobs if jobs == 1 else min(resolve_jobs(jobs), max(1, len(pending)))
    if effective <= 1 or len(pending) < 2:
        for relpath, rdf_format in pending:
            if tracer is not None:
                tracer.reset_clock()
            with _tracectx.task_scope(f"parse:{relpath}"):
                batch = _parse_batch(root, relpath, rdf_format, digests[relpath],
                                     tracer=tracer)
            with _tracectx.task_scope(f"apply:{relpath}"):
                added = _apply_batch(store, batch, tracer=tracer)
            report.quads_added += added
            report.parsed.append(relpath)
            _INGEST_QUADS.inc(added)
            if on_file is not None:
                on_file(len(report.parsed), len(pending), report.quads_added)
    else:
        ctx = pool_context()
        tasks = [(relpath, fmt, digests[relpath]) for relpath, fmt in pending]
        chunksize = max(1, len(tasks) // (effective * 4))
        with ctx.Pool(
            processes=effective,
            initializer=_init_ingest_worker,
            initargs=(str(root), ObsConfig.from_tracer(tracer)),
        ) as pool:
            # imap preserves task order: batches commit in the same
            # deterministic file order a serial ingest uses.
            for status, payload, events in pool.imap(
                _parse_batch_task, tasks, chunksize=chunksize
            ):
                if status == "error":
                    payload.reraise(fallback=TurtleError)
                if tracer is not None:
                    tracer.reset_clock()
                    tracer.add_events(events or ())
                with _tracectx.task_scope(f"apply:{payload.relpath}"):
                    added = _apply_batch(store, payload, tracer=tracer)
                report.quads_added += added
                report.parsed.append(payload.relpath)
                _INGEST_QUADS.inc(added)
                if on_file is not None:
                    on_file(len(report.parsed), len(pending), report.quads_added)
    if compact and store.has_pending():
        with span(tracer, "compact", cat="ingest", files=len(report.parsed)):
            store.compact()
    if path_index:
        if store.has_pending():
            # Compaction was deferred; the index can only describe a
            # committed generation, so it is built at the next compacted
            # ingest (or stays stale-and-invisible until then).
            report.path_index = "deferred"
        elif store.path_index() is not None:
            # Generation unchanged (sha-incremental no-op or already
            # indexed) — the committed index is still valid as-is.
            report.path_index = "fresh"
        else:
            from ..pathindex import build_path_index

            with span(tracer, "path-index", cat="ingest"):
                build_path_index(store)
            report.path_index = "built"
    report.duration_s = time.perf_counter() - started
    _INGEST_FILES.labels("parsed").inc(len(report.parsed))
    _INGEST_FILES.labels("skipped").inc(len(report.skipped))
    _events.emit(
        "ingest.done",
        store=str(store.path),
        generation=store.generation,
        parsed=len(report.parsed),
        skipped=len(report.skipped),
        quads=report.quads_added,
        rebuilt=report.rebuilt,
        jobs=effective,
        duration_s=round(report.duration_s, 6),
    )
    _shm.flush()
    return report
