"""Append-only write-ahead log for the quad store.

All ingest mutations — new dictionary terms, quads, prefix bindings, and
per-source-file commit markers — are appended here before compaction
folds them into the sorted segment files.  The log is the store's sole
durability mechanism between compactions, so its format is defensive:

    [u32 payload length][u8 record type][payload][u32 crc32]

where the CRC covers the type byte plus the payload.  Replay stops at
the first short or corrupt record (a crash mid-append leaves exactly
that), and everything after the last committed ``FILE`` record is
discarded: the ``FILE`` marker is the *commit point* of one ingested
source file, so recovery is atomic per file.  Terms and quads belonging
to a file whose marker never made it to disk are dropped, and the file
is simply re-ingested next time (its content hash is absent from the
store manifest).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs import metrics as _metrics

__all__ = ["WriteAheadLog", "WalReplay", "WAL_FILE"]

_FSYNC_TOTAL = _metrics.counter(
    "repro_store_wal_fsync_total", "WAL fsync calls (commit markers, clear, truncate)"
)
_FSYNC_SECONDS = _metrics.histogram(
    "repro_store_wal_fsync_seconds", "WAL fsync latency in seconds"
)

WAL_FILE = "wal.log"

REC_TERM = 1  # payload: encoded term bytes (ids are implicit: sequential)
REC_QUAD = 2  # payload: 4 x u32 (s, p, o, g)
REC_PREFIX = 3  # payload: u16 prefix len + prefix + namespace IRI
REC_FILE = 4  # payload: u16 path len + path + 32-byte sha256 digest

_HEADER = struct.Struct("<IB")
_CRC = struct.Struct("<I")
_QUAD = struct.Struct("<4I")
_LEN16 = struct.Struct("<H")


@dataclass
class WalReplay:
    """The committed state recovered from a WAL replay."""

    terms: List[bytes] = field(default_factory=list)
    quads: List[Tuple[int, int, int, int]] = field(default_factory=list)
    prefixes: List[Tuple[str, str]] = field(default_factory=list)
    files: Dict[str, str] = field(default_factory=dict)  # relpath -> sha256 hex
    committed_bytes: int = 0  # offset of the last committed FILE record end
    truncated: bool = False  # True if an uncommitted/corrupt tail was dropped

    @property
    def empty(self) -> bool:
        return not (self.terms or self.quads or self.prefixes or self.files)


class WriteAheadLog:
    """Writer/replayer for one store's ``wal.log``."""

    def __init__(self, directory: Path):
        self.path = Path(directory) / WAL_FILE
        self._handle = None
        self.fsync_count = 0  # per-log plain counter, surfaced via store_info()

    def _fsync(self, handle) -> None:
        started = time.perf_counter()
        os.fsync(handle.fileno())
        self.fsync_count += 1
        _FSYNC_TOTAL.inc()
        _FSYNC_SECONDS.observe(time.perf_counter() - started)

    # -- replay -------------------------------------------------------------

    def replay(self) -> WalReplay:
        """Recover committed records; see the module docstring for the
        per-file atomicity rule."""
        replay = WalReplay()
        if not self.path.exists():
            return replay
        data = self.path.read_bytes()
        pos = 0
        total = len(data)
        pending_terms: List[bytes] = []
        pending_quads: List[Tuple[int, int, int, int]] = []
        pending_prefixes: List[Tuple[str, str]] = []
        while pos + _HEADER.size <= total:
            length, rec_type = _HEADER.unpack_from(data, pos)
            end = pos + _HEADER.size + length + _CRC.size
            if end > total:
                break  # short tail: crash mid-append
            payload = data[pos + _HEADER.size : pos + _HEADER.size + length]
            (crc,) = _CRC.unpack_from(data, pos + _HEADER.size + length)
            if crc != zlib.crc32(bytes([rec_type]) + payload):
                break  # corrupt tail
            if rec_type == REC_TERM:
                pending_terms.append(payload)
            elif rec_type == REC_QUAD:
                pending_quads.append(_QUAD.unpack(payload))
            elif rec_type == REC_PREFIX:
                (plen,) = _LEN16.unpack_from(payload, 0)
                prefix = payload[2 : 2 + plen].decode("utf-8")
                base = payload[2 + plen :].decode("utf-8")
                pending_prefixes.append((prefix, base))
            elif rec_type == REC_FILE:
                (plen,) = _LEN16.unpack_from(payload, 0)
                relpath = payload[2 : 2 + plen].decode("utf-8")
                digest = payload[2 + plen :].hex()
                replay.terms.extend(pending_terms)
                replay.quads.extend(pending_quads)
                replay.prefixes.extend(pending_prefixes)
                pending_terms, pending_quads, pending_prefixes = [], [], []
                replay.files[relpath] = digest
                replay.committed_bytes = end
            else:
                break  # unknown record type: treat as corruption
            pos = end
        replay.truncated = replay.committed_bytes < total
        return replay

    def truncate_to(self, size: int) -> None:
        """Drop an uncommitted tail before resuming appends."""
        if self.path.exists() and self.path.stat().st_size > size:
            with open(self.path, "r+b") as handle:
                handle.truncate(size)
                handle.flush()
                self._fsync(handle)

    # -- append -------------------------------------------------------------

    def _writer(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def _append(self, rec_type: int, payload: bytes) -> None:
        record = (
            _HEADER.pack(len(payload), rec_type)
            + payload
            + _CRC.pack(zlib.crc32(bytes([rec_type]) + payload))
        )
        self._writer().write(record)

    def append_term(self, encoded: bytes) -> None:
        self._append(REC_TERM, encoded)

    def append_quad(self, s: int, p: int, o: int, g: int) -> None:
        self._append(REC_QUAD, _QUAD.pack(s, p, o, g))

    def append_prefix(self, prefix: str, base: str) -> None:
        raw = prefix.encode("utf-8")
        self._append(REC_PREFIX, _LEN16.pack(len(raw)) + raw + base.encode("utf-8"))

    def commit_file(self, relpath: str, sha256_hex: str) -> None:
        """Append the FILE marker and fsync: the per-file commit point."""
        raw = relpath.encode("utf-8")
        self._append(REC_FILE, _LEN16.pack(len(raw)) + raw + bytes.fromhex(sha256_hex))
        handle = self._writer()
        handle.flush()
        self._fsync(handle)

    def clear(self) -> None:
        """Reset the log after a successful compaction."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            self._fsync(handle)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
