"""Bounded-memory spill runs for the external-merge segment build.

When an ingest accumulates more pending (WAL-committed, uncompacted)
quads than the store's ``spill_quad_budget``, the pending set is flushed
to *spill runs*: one sorted run file per segment ordering, holding the
batch's quads already permuted into that ordering's sort order, in the
segment record format (16-byte ``<4I``).  Compaction then k-way merges
the current segment with every run (plus the residual pending set) into
the new segment — the same sorted, duplicate-free record stream the
in-memory sort produced, so segment bytes are identical either way.

Durability
----------
``spill.json`` is the mini commit point of a spill:

1. run files for the batch are written (tmp + fsync + atomic rename);
2. the dictionary delta is folded into the persisted dict files;
3. ``spill.json`` is atomically replaced, now listing the batch along
   with the cumulative ingested-file digests and prefix bindings that
   until now lived only in the WAL;
4. the WAL is cleared — this is what stops WAL and spill runs from
   double-holding the same quads on disk.

A crash before step 3 leaves orphan run files (removed at next open —
they are not listed in ``spill.json``) and an intact WAL: nothing was
lost.  A crash between steps 3 and 4 leaves a WAL whose records
duplicate spilled state; replay is idempotent — terms re-intern to
their existing ids, quads deduplicate in the compaction merge, file
digests and prefixes are map-merged.  Run files are only deleted after
the *store* manifest commits a compaction that folded them in.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Tuple

from .segments import ORDERINGS, permute

__all__ = [
    "SPILL_STATE_FILE",
    "SPILL_FORMAT_VERSION",
    "write_spill_batch",
    "iter_spill_run",
    "spill_run_path",
    "read_spill_state",
    "write_spill_state",
    "remove_spill_files",
    "remove_orphan_runs",
]

SPILL_STATE_FILE = "spill.json"
SPILL_FORMAT_VERSION = 1

_RECORD = struct.Struct("<4I")
_READ_RECORDS = 65536  # records per read() when streaming a run


def spill_run_path(directory: Path, batch_id: int, ordering: str) -> Path:
    return Path(directory) / f"spill-{batch_id:06d}.{ordering}.run"


def write_spill_batch(
    directory: Path,
    batch_id: int,
    quads: Sequence[Tuple[int, int, int, int]],
) -> Dict[str, int]:
    """Write one batch of pending quads as four sorted run files.

    Returns per-ordering record counts (all equal — runs deduplicate
    within the batch; cross-batch duplicates fall out in the merge).
    """
    counts: Dict[str, int] = {}
    for ordering in ORDERINGS:
        records = sorted({permute(q, ordering) for q in quads})
        path = spill_run_path(directory, batch_id, ordering)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            buffer = bytearray()
            for record in records:
                buffer += _RECORD.pack(*record)
                if len(buffer) >= (1 << 20):
                    handle.write(buffer)
                    del buffer[:]
            if buffer:
                handle.write(buffer)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        counts[ordering] = len(records)
    return counts


def iter_spill_run(directory: Path, batch_id: int, ordering: str
                   ) -> Iterator[Tuple[int, int, int, int]]:
    """Stream one run file's records in order, in bounded chunks."""
    path = spill_run_path(directory, batch_id, ordering)
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_READ_RECORDS * _RECORD.size)
            if not chunk:
                return
            yield from _RECORD.iter_unpack(chunk)


# -- spill state (the mini commit point) ------------------------------------


def read_spill_state(directory: Path) -> Dict:
    """The committed spill state, or an empty state if none exists."""
    path = Path(directory) / SPILL_STATE_FILE
    if not path.exists():
        return {"format_version": SPILL_FORMAT_VERSION, "batches": [],
                "files": {}, "prefixes": [], "quad_records": 0}
    return json.loads(path.read_text())


def write_spill_state(directory: Path, state: Dict) -> None:
    path = Path(directory) / SPILL_STATE_FILE
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(state, indent=2, sort_keys=True) + "\n")
    with open(tmp, "rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def remove_spill_files(directory: Path) -> None:
    """Delete every run file and the state file (post-compaction)."""
    directory = Path(directory)
    for name in os.listdir(directory):
        if name.startswith("spill-") and (name.endswith(".run")
                                          or name.endswith(".run.tmp")):
            (directory / name).unlink()
    state = directory / SPILL_STATE_FILE
    if state.exists():
        state.unlink()
    tmp = directory / (SPILL_STATE_FILE + ".tmp")
    if tmp.exists():
        tmp.unlink()


def remove_orphan_runs(directory: Path, state: Dict) -> None:
    """Delete run files not committed in *state* (crash before the
    state write left them; their quads are still in the WAL)."""
    directory = Path(directory)
    committed = {
        f"spill-{batch['id']:06d}.{ordering}.run"
        for batch in state.get("batches", ())
        for ordering in ORDERINGS
    }
    for name in os.listdir(directory):
        if name.startswith("spill-") and name.endswith(".run") and name not in committed:
            (directory / name).unlink()
        elif name.startswith("spill-") and name.endswith(".run.tmp"):
            (directory / name).unlink()
