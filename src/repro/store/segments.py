"""Sorted id-quad segment files with mmap binary-search access.

A segment is a flat file of fixed-width 16-byte records — four little-
endian ``u32`` term ids — sorted lexicographically.  The store keeps one
segment per *ordering*; each ordering stores the quad's fields already
permuted into its sort order, so a prefix of bound ids maps directly to
a contiguous record range found by binary search:

    spog  (subject, predicate, object, graph)
    posg  (predicate, object, subject, graph)
    ospg  (object, subject, predicate, graph)
    gspo  (graph, subject, predicate, object)

The first three answer any triple pattern over the union of all graphs;
because the graph id sorts *last*, the same (s, p, o) asserted in
several graphs yields adjacent records, which is what lets the union
view deduplicate with a one-record lookbehind instead of a hash set.
``gspo`` serves ``GRAPH``-scoped patterns: the graph id is the leading
field, so a per-graph scan is a range, not a filter.

Readers mmap the file and unpack records on demand — opening a store
costs O(1) memory regardless of corpus size.
"""

from __future__ import annotations

import mmap
import os
import struct
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["ORDERINGS", "SegmentReader", "write_segment", "write_segment_stream",
           "permute", "segment_filename"]

_RECORD = struct.Struct("<4I")
RECORD_SIZE = _RECORD.size

#: ordering name -> permutation applied to an (s, p, o, g) quad.
ORDERINGS = {
    "spog": (0, 1, 2, 3),
    "posg": (1, 2, 0, 3),
    "ospg": (2, 0, 1, 3),
    "gspo": (3, 0, 1, 2),
}

_MAX_ID = 0xFFFFFFFF


def segment_filename(ordering: str) -> str:
    return f"{ordering}.seg"


def permute(quad: Sequence[int], ordering: str) -> Tuple[int, int, int, int]:
    a, b, c, d = ORDERINGS[ordering]
    return (quad[a], quad[b], quad[c], quad[d])


def write_segment(path: Path, records: List[Tuple[int, int, int, int]]) -> None:
    """Write pre-sorted records to *path* via a tmp file + atomic rename."""
    write_segment_stream(path, records)


def write_segment_stream(
    path: Path, records: "Iterator[Tuple[int, int, int, int]]",
    buffer_bytes: int = 1 << 20,
) -> int:
    """Stream pre-sorted records to *path* (tmp + atomic rename).

    The external-merge compaction path: *records* is typically a k-way
    merge over segment scans and spill runs, so this never holds more
    than *buffer_bytes* of output in memory.  Returns the record count.
    """
    tmp = path.with_name(path.name + ".tmp")
    count = 0
    buffer = bytearray()
    with open(tmp, "wb") as handle:
        for record in records:
            buffer += _RECORD.pack(*record)
            count += 1
            if len(buffer) >= buffer_bytes:
                handle.write(buffer)
                del buffer[:]
        if buffer:
            handle.write(buffer)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return count


class SegmentReader:
    """Binary-search access to one sorted segment file."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._map: Optional[mmap.mmap] = None
        self.record_count = 0
        # Binary-search record probes (comparisons). A plain int rather
        # than a registry counter: bisect runs in the innermost query
        # loop, and per-op registry locking would be measurable.  The
        # store aggregates these into store_info(); the endpoint mirrors
        # them into /metrics via a collector.
        self.probes = 0
        if self.path.exists() and self.path.stat().st_size:
            with open(self.path, "rb") as handle:
                self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            self.record_count = len(self._map) // RECORD_SIZE

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None

    def record(self, index: int) -> Tuple[int, int, int, int]:
        return _RECORD.unpack_from(self._map, index * RECORD_SIZE)

    def __len__(self) -> int:
        return self.record_count

    def _bisect_left(self, key: Tuple[int, ...]) -> int:
        """First index whose record (prefix) is >= *key*."""
        lo, hi = 0, self.record_count
        width = len(key)
        probes = 0
        while lo < hi:
            probes += 1
            mid = (lo + hi) // 2
            if self.record(mid)[:width] < key:
                lo = mid + 1
            else:
                hi = mid
        self.probes += probes
        return lo

    def gallop_left(self, key: Tuple[int, ...], lo: int = 0) -> int:
        """First index >= *lo* whose record (prefix) is >= *key*.

        Exponential (galloping) search from *lo*, then bisect inside the
        bracket.  A merge join probes successive sorted keys with the
        previous hit as *lo*, so each probe costs O(log distance) rather
        than O(log n) — the monotone-cursor counterpart to
        :meth:`_bisect_left`.  Probes are counted identically.
        """
        n = self.record_count
        if lo >= n:
            return n
        width = len(key)
        probes = 1
        if self.record(lo)[:width] >= key:
            self.probes += probes
            return lo
        offset = 1
        while lo + offset < n:
            probes += 1
            if self.record(lo + offset)[:width] >= key:
                break
            offset <<= 1
        left = lo + (offset >> 1) + 1
        right = min(lo + offset, n)
        while left < right:
            probes += 1
            mid = (left + right) // 2
            if self.record(mid)[:width] < key:
                left = mid + 1
            else:
                right = mid
        self.probes += probes
        return left

    def range_for_prefix(self, prefix: Tuple[int, ...]) -> Tuple[int, int]:
        """The [lo, hi) record range matching a bound-field prefix."""
        if not prefix:
            return (0, self.record_count)
        lo = self._bisect_left(prefix)
        hi = self._bisect_left(prefix[:-1] + (prefix[-1] + 1,))
        return (lo, hi)

    def count_prefix(self, prefix: Tuple[int, ...]) -> int:
        lo, hi = self.range_for_prefix(prefix)
        return hi - lo

    def scan(self, prefix: Tuple[int, ...] = ()) -> Iterator[Tuple[int, int, int, int]]:
        """Yield records in the prefix range, in sort order."""
        lo, hi = self.range_for_prefix(prefix)
        for index in range(lo, hi):
            yield self.record(index)

    def distinct(self, prefix: Tuple[int, ...] = ()) -> Iterator[int]:
        """Distinct values of the field following *prefix*, by bisect jumps.

        Skipping from one value to the next with a binary search makes
        e.g. "all predicates" O(distinct · log n) instead of O(n).
        """
        position = len(prefix)
        lo, hi = self.range_for_prefix(prefix)
        while lo < hi:
            value = self.record(lo)[position]
            yield value
            lo = self._bisect_left(prefix + (value + 1,))

    def scan_distinct_triples(
        self, prefix: Tuple[int, ...] = ()
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield records with the trailing (4th) field dropped, collapsing
        adjacent duplicates — the union-graph read path for orderings whose
        last field is the graph id."""
        last: Optional[Tuple[int, int, int]] = None
        for record in self.scan(prefix):
            head = record[:3]
            if head != last:
                last = head
                yield head

    def count_distinct_triples(self, prefix: Tuple[int, ...] = ()) -> int:
        return sum(1 for _ in self.scan_distinct_triples(prefix))
