"""Experiment QC — the versioned-graph query acceleration layer.

Measures what the caching layer buys on the paper's payoff path:

* cold vs. warm latency for the six Section 4 exemplar queries over the
  full corpus (warm = LRU result-cache hit at an unchanged version);
* that a mutation between runs provably invalidates the cache, observed
  from the outside via the endpoint's ``/stats`` version counter;
* concurrent endpoint throughput with 16 client threads on a warm cache.

Numbers land in ``_artifacts/query_cache.json``; ``bench_report.py``
appends them to the cross-PR trajectory file.
"""

import json
import threading
import time
import urllib.parse
import urllib.request

import pytest

from repro.endpoint import SparqlClient, SparqlEndpoint
from repro.queries import (
    Q1_WORKFLOW_RUNS,
    q2_runs_of_template,
    q3_template_io,
    q4_process_runs,
    q5_who_executed,
    q6_services_executed,
    taverna_workflow_iri,
)
from repro.sparql import QueryEngine
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS

from .conftest import write_artifact


@pytest.fixture(scope="module")
def exemplar_queries(corpus):
    """The six exemplar queries as SPARQL text, bound to real corpus IRIs."""
    template_id = next(t for t in corpus.multi_run_templates() if t.startswith("t-"))
    template = corpus.templates[template_id]
    taverna_trace = next(t for t in corpus.by_system("taverna") if not t.failed)
    wings_trace = next(t for t in corpus.by_system("wings") if not t.failed)
    template_iri = taverna_workflow_iri(template_id, template.name)
    taverna_run = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")
    wings_run = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings_trace.run_id}")
    return {
        "Q1": Q1_WORKFLOW_RUNS,
        "Q2": q2_runs_of_template(template_iri),
        "Q3": q3_template_io(template_iri),
        "Q4": q4_process_runs(taverna_run),
        "Q5": q5_who_executed(taverna_run),
        "Q6": q6_services_executed(wings_run),
    }


def test_cold_vs_warm_q1_q6(corpus_dataset, exemplar_queries, artifacts_dir):
    """Warm-cache evaluation of Q1–Q6 must be ≥ 5× faster than cold."""
    engine = QueryEngine(corpus_dataset)
    timings = {}
    for name, sparql in exemplar_queries.items():
        started = time.perf_counter()
        engine.query(sparql)
        cold_s = time.perf_counter() - started
        warm_rounds = 10
        started = time.perf_counter()
        for _ in range(warm_rounds):
            engine.query(sparql)
        warm_s = (time.perf_counter() - started) / warm_rounds
        timings[name] = {
            "cold_ms": round(cold_s * 1000, 3),
            "warm_ms": round(warm_s * 1000, 6),
            "speedup": round(cold_s / warm_s, 1) if warm_s else float("inf"),
        }
    cold_total = sum(t["cold_ms"] for t in timings.values())
    warm_total = sum(t["warm_ms"] for t in timings.values())
    info = engine.cache_info()
    assert info["misses"] == 6 and info["hits"] == 60
    assert warm_total * 5 <= cold_total, (
        f"warm Q1–Q6 {warm_total:.3f} ms not ≥5× faster than cold {cold_total:.3f} ms"
    )
    artifact = {
        "cold_total_ms": round(cold_total, 3),
        "warm_total_ms": round(warm_total, 6),
        "overall_speedup": round(cold_total / warm_total, 1),
        "per_query": timings,
    }
    test_cold_vs_warm_q1_q6.artifact = artifact  # picked up by throughput test
    write_artifact(artifacts_dir, "query_cache.json", json.dumps(artifact, indent=2))


def test_mutation_invalidation_visible_via_stats(corpus_dataset):
    """Version bump from a write is observable at /stats and forces a miss."""
    from repro.rdf import Namespace, PROV, RDF

    EX = Namespace("http://example.org/bench-cache/")
    with SparqlEndpoint(corpus_dataset) as server:
        client = SparqlClient(server.query_url)
        client.query(Q1_WORKFLOW_RUNS)
        client.query(Q1_WORKFLOW_RUNS)
        before = client.stats()
        assert before["result_cache"]["hits"] >= 1
        # net-zero mutation: add then remove, so sibling benches sharing
        # the session corpus see identical content afterwards
        corpus_dataset.default.add((EX.probe, RDF.type, PROV.Entity))
        corpus_dataset.default.remove((EX.probe, RDF.type, PROV.Entity))
        rows = client.query(Q1_WORKFLOW_RUNS)
        after = client.stats()
        assert len(rows) == 198
        assert after["version"] >= before["version"] + 2  # both writes observed
        assert after["result_cache"]["misses"] > before["result_cache"]["misses"]


def test_concurrent_endpoint_throughput(corpus_dataset, exemplar_queries, artifacts_dir):
    """16 threads hammering a warm endpoint; records queries/second."""
    n_threads = 16
    requests_per_thread = 25
    queries = list(exemplar_queries.values())
    with SparqlEndpoint(corpus_dataset) as server:
        client_queries = [
            server.query_url + "?" + urllib.parse.urlencode({"query": q}) for q in queries
        ]
        for url in client_queries:  # warm the cache once
            with urllib.request.urlopen(url, timeout=30) as response:
                response.read()
        errors = []

        def worker(index: int):
            for k in range(requests_per_thread):
                url = client_queries[(index + k) % len(client_queries)]
                try:
                    with urllib.request.urlopen(url, timeout=30) as response:
                        response.read()
                except Exception as exc:  # noqa: BLE001 - fail the bench
                    errors.append(repr(exc))
                    return

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        stats = server.stats()
    assert not errors, errors[:3]
    total = n_threads * requests_per_thread
    throughput = {
        "threads": n_threads,
        "requests": total,
        "elapsed_s": round(elapsed, 3),
        "throughput_qps": round(total / elapsed, 1),
        "cache_hits": stats["result_cache"]["hits"],
        "cache_misses": stats["result_cache"]["misses"],
    }
    assert stats["result_cache"]["hits"] >= total  # warm path stayed warm
    artifact = getattr(test_cold_vs_warm_q1_q6, "artifact", {})
    artifact["concurrent_endpoint"] = throughput
    write_artifact(artifacts_dir, "query_cache.json", json.dumps(artifact, indent=2))
