"""Query-parity gate: every execution configuration must agree on Q1–Q6.

Builds the deterministic corpus, ingests it into two stores (``--jobs 1``
and ``--jobs 2``), then evaluates all six exemplar queries across the
full configuration grid:

    source    ∈ {in-memory dataset, store (jobs=1), store (jobs=2)}
    optimizer ∈ {on, off}
    pipeline  ∈ {encoded id-space, decoded per-binding}

For each query the canonical row multiset must be identical in every
configuration, and the EXPLAIN plan digest must be identical between the
two store builds (plan determinism across parallel ingest) and across
the encoded toggle (the digest keys the plan, not the runtime pipeline).

A second matrix covers property-path queries with the persisted path
index toggled on/off (index-served closures must be byte-identical to
graph BFS), and the three index files themselves must be byte-identical
between the ``--jobs 1`` and ``--jobs 2`` stores.

Run as a script (CI gate)::

    PYTHONPATH=src python benchmarks/query_parity.py [workdir]

Exits non-zero on the first mismatch.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.corpus import CorpusBuilder, write_corpus
from repro.queries import OPMW_EXPORT_NS, exemplar_queries
from repro.sparql import QueryEngine
from repro.store import QuadStore, StoreDataset, ingest_corpus

SEED = 2013

#: Property-path parity queries: the closure/sequence/inverse shapes the
#: path index serves, plus the `p*` shape that must fall back to BFS.
PATH_QUERIES = {
    "P1-lineage": """
        PREFIX prov: <http://www.w3.org/ns/prov#>
        SELECT ?out ?src WHERE { ?out (prov:used|^prov:wasGeneratedBy)+ ?src }
    """,
    "P2-sequence": """
        PREFIX prov: <http://www.w3.org/ns/prov#>
        SELECT ?a ?b WHERE { ?a (prov:used/prov:wasGeneratedBy)+ ?b }
    """,
    "P3-star": """
        PREFIX prov: <http://www.w3.org/ns/prov#>
        SELECT ?a ?b WHERE { ?a prov:used* ?b }
    """,
    "P4-inverse": """
        PREFIX prov: <http://www.w3.org/ns/prov#>
        SELECT ?e ?act WHERE { ?act ^prov:wasGeneratedBy ?e }
    """,
}


def _engine(source, optimize: bool, encoded: bool) -> QueryEngine:
    engine = QueryEngine(source, optimize_joins=optimize, encoded=encoded)
    # The exemplar queries rely on the exporters' extension prefixes
    # (mirrors CorpusQueries).
    engine.namespaces.bind(
        "tavernaprov", "http://ns.taverna.org.uk/2012/tavernaprov/", replace=False
    )
    engine.namespaces.bind("opmw-export", OPMW_EXPORT_NS.base, replace=False)
    return engine


def _canon_rows(table):
    """Order-insensitive canonical form: sorted tuples of (var, n3)."""
    return sorted(
        tuple(
            sorted((name, term.n3()) for name, term in row.asdict().items())
        )
        for row in table
    )


def run_parity(workdir: Path) -> int:
    corpus = CorpusBuilder(seed=SEED).build()
    corpus_dir = workdir / "corpus"
    write_corpus(corpus, corpus_dir)
    queries = exemplar_queries(corpus)

    stores = {}
    for jobs in (1, 2):
        store = QuadStore(workdir / f"store-j{jobs}")
        report = ingest_corpus(store, corpus_dir, jobs=jobs)
        print(f"ingested store-j{jobs}: {len(report.parsed)} files")
        stores[jobs] = store

    sources = {
        "memory": corpus.dataset(),
        "store-j1": StoreDataset(stores[1]),
        "store-j2": StoreDataset(stores[2]),
    }

    failures = 0
    summary = {}
    try:
        for name, text in sorted(queries.items()):
            results = {}
            digests = {}
            for source_name, source in sources.items():
                for optimize in (True, False):
                    for encoded in (True, False):
                        config = (
                            f"{source_name}/opt={'on' if optimize else 'off'}"
                            f"/enc={'on' if encoded else 'off'}"
                        )
                        engine = _engine(source, optimize, encoded)
                        results[config] = _canon_rows(engine.query(text))
                        digests[config] = engine.explain(text).digest

            baseline_config, baseline = next(iter(results.items()))
            mismatched = [
                config for config, rows in results.items() if rows != baseline
            ]
            if mismatched:
                failures += 1
                print(f"FAIL {name}: rows diverge from {baseline_config}: "
                      f"{', '.join(mismatched)}")
            else:
                print(f"ok   {name}: {len(baseline)} rows identical "
                      f"across {len(results)} configurations")

            # Digest checks: per optimizer setting, the two store builds
            # and the encoded toggle must agree (the digest keys the
            # plan; the optimizer legitimately changes it).
            for optimize in ("on", "off"):
                store_digests = {
                    config: digest for config, digest in digests.items()
                    if config.startswith("store-") and f"/opt={optimize}/" in config
                }
                if len(set(store_digests.values())) > 1:
                    failures += 1
                    print(f"FAIL {name}: store plan digests diverge "
                          f"(opt={optimize}): {store_digests}")
            summary[name] = {
                "rows": len(baseline),
                "digests": {
                    "store_opt_on": digests["store-j1/opt=on/enc=on"],
                    "store_opt_off": digests["store-j1/opt=off/enc=on"],
                    "memory_opt_on": digests["memory/opt=on/enc=on"],
                },
            }
        # Property-path matrix: the path index must be invisible in the
        # results, whichever sources/optimizer it combines with.
        for name, text in sorted(PATH_QUERIES.items()):
            results = {}
            for source_name, source in sources.items():
                for optimize in (True, False):
                    for use_index in (True, False):
                        config = (
                            f"{source_name}/opt={'on' if optimize else 'off'}"
                            f"/idx={'on' if use_index else 'off'}"
                        )
                        engine = QueryEngine(
                            source, optimize_joins=optimize,
                            path_index=use_index, cache_size=0,
                        )
                        results[config] = _canon_rows(engine.query(text))
            baseline_config, baseline = next(iter(results.items()))
            mismatched = [
                config for config, rows in results.items() if rows != baseline
            ]
            if mismatched:
                failures += 1
                print(f"FAIL {name}: rows diverge from {baseline_config}: "
                      f"{', '.join(mismatched)}")
            else:
                print(f"ok   {name}: {len(baseline)} rows identical "
                      f"across {len(results)} configurations")
            summary[name] = {"rows": len(baseline)}

        # The index derives purely from the (byte-identical) segments,
        # so its own files must not depend on the ingest job count.
        from repro.pathindex import FWD_FILE, INV_FILE, TRIE_FILE

        for file_name in (FWD_FILE, INV_FILE, TRIE_FILE):
            bytes_j1 = (stores[1].path / file_name).read_bytes()
            bytes_j2 = (stores[2].path / file_name).read_bytes()
            if bytes_j1 != bytes_j2:
                failures += 1
                print(f"FAIL path index {file_name} differs between "
                      f"--jobs 1 and --jobs 2 builds")
            else:
                print(f"ok   path index {file_name}: "
                      f"{len(bytes_j1)} bytes identical across job counts")
    finally:
        for store in stores.values():
            store.close()

    print(json.dumps(summary, indent=2))
    if failures:
        print(f"query parity FAILED: {failures} mismatch(es)")
        return 1
    print("query parity OK")
    return 0


def main(argv) -> int:
    if len(argv) > 1:
        workdir = Path(argv[1])
        workdir.mkdir(parents=True, exist_ok=True)
        return run_parity(workdir)
    with tempfile.TemporaryDirectory(prefix="query-parity-") as tmp:
        return run_parity(Path(tmp))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
