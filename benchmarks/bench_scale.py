"""Corpus scale-out benchmark: throughput, peak RSS, and query latency
as the corpus grows.

Each scale point runs in its **own subprocess** so
``resource.getrusage(RUSAGE_SELF).ru_maxrss`` is a clean peak-RSS
measurement of exactly one streaming build → ingest → Q1–Q6 pipeline at
that scale.  A deliberately small spill budget forces the external-merge
path at every point, so the numbers certify the bounded-memory
discipline rather than the in-memory fast path.  The headline contract:
peak RSS grows **sublinearly** in corpus size (the pending set, segment
merge, and path-index build are all bounded), while ingest throughput
(quads/s) stays roughly flat.

Also measured: dictionary intern throughput across incremental folds —
the fold must never stall for seconds at a hash-table growth boundary,
which is what the per-fold duration assertion pins.

Numbers land in ``_artifacts/scale_bench.json``; ``bench_report.py``
folds them into ``scale_trajectory.json``.  Also runnable standalone as
the CI scale smoke::

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

#: Scale points for the full benchmark (>= 3, per the scale-out issue)
#: and for the CI smoke.  The spill budget keeps the pending set well
#: below one scale point's quad count, so every point exercises spills.
DEFAULT_SCALES = (1, 2, 4)
SMOKE_SCALES = (1, 2)
CHILD_SPILL_BUDGET = 25_000

#: Peak-RSS guard: across an N× corpus, peak RSS may grow at most
#: 1 + SLOPE·N — markedly sublinear (a linear pipeline would track N
#: itself).  The residual slope covers what legitimately scales with
#: corpus size at O(runs), not O(quads): dictionary mmaps the merge
#: touches, manifest entries, and the trie's per-run sequences.
RSS_SUBLINEAR_SLOPE = 0.3

#: Intern-throughput floor (terms/s, cold dictionary, folds included)
#: and the per-fold stall ceiling — generous for CI runners; an
#: accidental O(n) rescan per fold blows through both.
INTERN_TERMS_PER_S_FLOOR = 30_000
MAX_FOLD_SECONDS = 2.0

_SRC = Path(__file__).resolve().parent.parent / "src"


def _exemplar_queries_from_manifest(root: Path) -> dict:
    """The Q1–Q6 texts instantiated from a written corpus manifest.

    Mirrors :func:`repro.queries.exemplar_queries` without materializing
    a :class:`Corpus`: the fixtures (first multi-run ``t-`` template,
    first non-failed Taverna/Wings runs) are all in ``manifest.json``.
    """
    from repro.queries import (
        Q1_WORKFLOW_RUNS,
        q2_runs_of_template,
        q3_template_io,
        q4_process_runs,
        q5_who_executed,
        q6_services_executed,
        taverna_workflow_iri,
    )
    from repro.taverna.engine import TAVERNA_RUN_NS
    from repro.wings.engine import OPMW_EXPORT_NS

    traces = json.loads((root / "manifest.json").read_text())["traces"]
    runs_of = {}
    for trace in traces:
        runs_of.setdefault(trace["template_id"], []).append(trace)
    template_id = next(
        tid for tid, runs in runs_of.items()
        if tid.startswith("t-") and len(runs) > 1
    )
    template_name = runs_of[template_id][0]["template_name"]
    taverna_trace = next(
        t for t in traces if t["system"] == "taverna" and t["status"] != "failed"
    )
    wings_trace = next(
        t for t in traces if t["system"] == "wings" and t["status"] != "failed"
    )
    taverna_template_iri = taverna_workflow_iri(template_id, template_name)
    taverna_run_iri = TAVERNA_RUN_NS.term(f"{taverna_trace['run_id']}/")
    wings_run_iri = OPMW_EXPORT_NS.term(
        f"WorkflowExecutionAccount/{wings_trace['run_id']}"
    )
    return {
        "Q1": Q1_WORKFLOW_RUNS,
        "Q2": q2_runs_of_template(taverna_template_iri),
        "Q3": q3_template_io(taverna_template_iri),
        "Q4": q4_process_runs(taverna_run_iri),
        "Q5": q5_who_executed(taverna_run_iri),
        "Q6": q6_services_executed(wings_run_iri),
    }


def _child_main(scale: int, workdir: str) -> None:
    """One scale point, measured in this (fresh) process."""
    import resource

    from repro.corpus import CorpusBuilder, build_and_write
    from repro.sparql import QueryEngine
    from repro.store import QuadStore, StoreDataset, ingest_corpus

    workdir = Path(workdir)
    root = workdir / "corpus"
    started = time.perf_counter()
    build_and_write(CorpusBuilder(seed=2013, scale=scale), root)
    build_s = time.perf_counter() - started

    started = time.perf_counter()
    store = QuadStore(workdir / "store", spill_quad_budget=CHILD_SPILL_BUDGET)
    report = ingest_corpus(store, root)
    ingest_s = time.perf_counter() - started

    queries = {}
    engine = QueryEngine(StoreDataset(store))
    for name, text in _exemplar_queries_from_manifest(root).items():
        started = time.perf_counter()
        result = engine.query(text)
        queries[name] = {
            "cold_ms": round((time.perf_counter() - started) * 1000, 3),
            "rows": 1 if isinstance(result, bool) else len(result),
        }
    quad_count = store.quad_count
    store.close()

    statistics = json.loads((root / "manifest.json").read_text())["statistics"]
    print(json.dumps({
        "scale": scale,
        "runs": statistics["runs"],
        "triples": statistics["triples"],
        "quads": quad_count,
        "build_s": round(build_s, 3),
        "ingest_s": round(ingest_s, 3),
        "ingest_quads_per_s": round(report.quads_added / ingest_s, 1),
        "spill_budget": CHILD_SPILL_BUDGET,
        # ru_maxrss is KiB on Linux; peak over the whole child process.
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "queries": queries,
    }))


def measure_scale_point(scale: int, workdir: Path) -> dict:
    """Run one scale point in a subprocess; returns its JSON record."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--child", str(scale), str(workdir)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(completed.stdout.splitlines()[-1])


def measure_scale_points(scales, workdir: Path) -> dict:
    points = []
    for scale in scales:
        point_dir = Path(workdir) / f"scale-{scale}"
        point_dir.mkdir(parents=True, exist_ok=True)
        points.append(measure_scale_point(scale, point_dir))
    first, last = points[0], points[-1]
    return {
        "cpu_count": os.cpu_count(),
        "scales": list(scales),
        "points": points,
        "rss_ratio": round(last["peak_rss_mb"] / first["peak_rss_mb"], 3),
        "size_ratio": round(last["quads"] / first["quads"], 3),
    }


def measure_intern_throughput(workdir: Path, terms: int = 150_000,
                              fold_every: int = 40_000) -> dict:
    """Cold-dictionary intern rate with periodic incremental folds.

    Interleaves :meth:`TermDictionary.fold_delta` the way a spilling
    ingest does and tracks the slowest single fold — the incremental
    rehash keeps each fold proportional to its delta, so no fold stalls
    for seconds even when one crosses a hash-table growth boundary.
    """
    from repro.rdf.terms import IRI
    from repro.store import TermDictionary
    from repro.store.dictionary import encode_term

    directory = Path(workdir) / "dict"
    directory.mkdir(parents=True, exist_ok=True)
    dictionary = TermDictionary(directory)
    encoded = [
        encode_term(IRI(f"http://example.org/scale/term/{i}"))
        for i in range(terms)
    ]
    fold_times = []
    started = time.perf_counter()
    for i, data in enumerate(encoded, start=1):
        dictionary.add_bytes(data)
        if i % fold_every == 0:
            fold_started = time.perf_counter()
            dictionary.fold_delta()
            fold_times.append(time.perf_counter() - fold_started)
    total_s = time.perf_counter() - started
    # Folded ids must stay resolvable through the rebuilt hash table.
    assert dictionary.lookup(IRI("http://example.org/scale/term/0")) == 1
    assert dictionary.lookup(
        IRI(f"http://example.org/scale/term/{terms - 1}")
    ) == terms
    dictionary.close()
    return {
        "terms": terms,
        "fold_every": fold_every,
        "seconds": round(total_s, 3),
        "terms_per_s": round(terms / total_s, 1),
        "folds": len(fold_times),
        "max_fold_s": round(max(fold_times), 4) if fold_times else 0.0,
        "rehashes": dictionary.rehash_count,
    }


def _check(result: dict) -> list:
    """The guard assertions shared by the pytest bench and the CI smoke;
    returns a list of failure messages (empty = pass)."""
    failures = []
    rss_limit = 1.0 + RSS_SUBLINEAR_SLOPE * result["size_ratio"]
    if result["rss_ratio"] > rss_limit:
        failures.append(
            f"peak RSS grew {result['rss_ratio']:.2f}x across a "
            f"{result['size_ratio']:.1f}x corpus (limit {rss_limit:.2f}x)"
        )
    intern = result["intern"]
    if intern["terms_per_s"] < INTERN_TERMS_PER_S_FLOOR:
        failures.append(
            f"intern throughput {intern['terms_per_s']:,.0f}/s below "
            f"{INTERN_TERMS_PER_S_FLOOR:,}/s floor"
        )
    if intern["max_fold_s"] > MAX_FOLD_SECONDS:
        failures.append(
            f"slowest dictionary fold {intern['max_fold_s']:.2f}s exceeds "
            f"{MAX_FOLD_SECONDS}s (rehash stall?)"
        )
    for point in result["points"]:
        missing = [name for name, q in point["queries"].items() if q["rows"] == 0]
        if missing:
            failures.append(
                f"scale {point['scale']}: empty result for {missing}"
            )
    return failures


def test_scale_pipeline(tmp_path_factory, artifacts_dir):
    from .conftest import write_artifact

    workdir = tmp_path_factory.mktemp("scale-bench")
    result = measure_scale_points(DEFAULT_SCALES, workdir)
    result["intern"] = measure_intern_throughput(workdir)
    failures = _check(result)
    assert not failures, failures
    write_artifact(artifacts_dir, "scale_bench.json", json.dumps(result, indent=2))


def _main() -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="two scale points; exit non-zero unless peak RSS stays "
             "bounded and intern throughput holds its floor",
    )
    parser.add_argument("--child", nargs=2, metavar=("SCALE", "WORKDIR"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    sys.path.insert(0, str(_SRC))
    if args.child:
        _child_main(int(args.child[0]), args.child[1])
        return 0
    scales = SMOKE_SCALES if args.smoke else DEFAULT_SCALES
    with tempfile.TemporaryDirectory(prefix="scale-bench-") as tmp:
        result = measure_scale_points(scales, Path(tmp))
        result["intern"] = measure_intern_throughput(Path(tmp))
    print(json.dumps(result, indent=2))
    failures = _check(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"smoke OK: peak RSS x{result['rss_ratio']} over a "
              f"x{result['size_ratio']} corpus; intern "
              f"{result['intern']['terms_per_s']:,.0f} terms/s "
              f"(slowest fold {result['intern']['max_fold_s']}s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(_main())
