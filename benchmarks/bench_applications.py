"""Experiment A1–A3 — the Section 3 applications over the corpus.

Benchmarks each application's core computation at corpus scale:
(i) dependency extraction over a trace, (ii) debugging every failed run,
(iii) decay detection across all 39 multi-run templates.
"""

import pytest

from repro.apps import DecayDetector, DependencyAnalyzer, RunDebugger
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS


@pytest.fixture(scope="module")
def ok_trace(corpus):
    return next(t for t in corpus.by_system("taverna") if not t.failed)


def test_a1_dependency_extraction(ok_trace, benchmark):
    graph = ok_trace.graph()

    def analyze():
        return DependencyAnalyzer(graph).all_dependency_pairs()

    pairs = benchmark(analyze)
    assert pairs


def test_a1_transitive_closure(ok_trace, benchmark):
    analyzer = DependencyAnalyzer(ok_trace.graph())
    output = analyzer.generated_entities()[0]

    deps = benchmark(analyzer.transitive_dependencies, output)
    assert isinstance(deps, set)


def test_a2_debug_all_failed_runs(corpus, benchmark):
    failed = corpus.failed_traces()
    graphs = [(t, t.graph()) for t in failed]

    def debug_all():
        reports = []
        for trace, graph in graphs:
            if trace.system == "taverna":
                iri = TAVERNA_RUN_NS.term(f"{trace.run_id}/")
            else:
                iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{trace.run_id}")
            reports.append(RunDebugger(graph).debug(iri))
        return reports

    reports = benchmark(debug_all)
    assert len(reports) == 30
    assert all(r.failed and r.responsible_processes for r in reports)


def test_a3_decay_detection(corpus, benchmark):
    detector = DecayDetector(corpus)

    reports = benchmark(detector.detect_all)

    assert len(reports) == 39
    decayed = [r for r in reports if r.decayed]
    stable = [r for r in reports if r.stable]
    assert decayed and stable


def test_a3_repair_lookup(corpus, benchmark):
    detector = DecayDetector(corpus)
    repairable = [t.run_id for t in corpus.failed_traces()
                  if detector.repair_candidates(t.run_id) is not None]
    assert len(repairable) == 6

    suggestion = benchmark(detector.repair_candidates, repairable[0])
    assert suggestion is not None and suggestion.artifacts
