"""Experiment T3 — Table 3: coverage of additional PROV terms.

The starred cells (prov:Plan and prov:wasInfluencedBy for Taverna) demand
PROV inference: the term is absent from the raw traces but derivable.
This bench measures the inference-backed coverage computation and checks
all five cells — stars included — against the paper.
"""

from repro.coverage import PAPER_TABLE3, SUPPORT_INFERRED, coverage_report, format_table3
from repro.prov.inference import inferred_graph
from .conftest import write_artifact


def test_table3_cells_match_paper(taverna_graph, wings_graph, benchmark, artifacts_dir):
    report = benchmark(coverage_report, taverna_graph, wings_graph)

    for entry in report.additional:
        assert (entry.taverna, entry.wings) == PAPER_TABLE3[entry.term.name], entry.term.name

    # The stars specifically:
    assert report.cell("prov:Plan").taverna == SUPPORT_INFERRED
    assert report.cell("prov:wasInfluencedBy").taverna == SUPPORT_INFERRED

    write_artifact(artifacts_dir, "table3.txt", format_table3(report))


def test_inference_materialization(taverna_graph, benchmark):
    """The inference pass that backs the starred cells, on Taverna traces."""
    result = benchmark(inferred_graph, taverna_graph)
    assert len(result) > len(taverna_graph)
