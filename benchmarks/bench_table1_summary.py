"""Experiment T1 — Table 1: the corpus fact sheet.

Regenerates every row of Table 1 from the built corpus and benchmarks the
fact-sheet computation (statistics over all 198 traces).  The constant
rows must match the paper verbatim; the size row is measured (the paper's
360 MB was the authors' testbed value — see EXPERIMENTS.md).
"""

from repro.corpus import format_table1, table1
from .conftest import write_artifact


def test_table1_rows_match_paper(corpus, artifacts_dir, benchmark):
    rows = benchmark(table1, corpus)

    by_field = {r.field: r.value for r in rows}
    assert [r.field for r in rows] == [
        "Data format", "Data model", "Size",
        "Tools used for generating provenance", "Domain",
        "Submission group", "License",
    ]
    assert by_field["Data model"] == "PROV-O"
    assert "RDF" in by_field["Data format"]
    assert "Taverna and Wings" in by_field["Tools used for generating provenance"]
    assert "12 domains" in by_field["Domain"]
    assert by_field["Submission group"] == "Wf4Ever-Wings"
    assert "Creative Commons Attribution 3.0" in by_field["License"]
    assert "Megabytes" in by_field["Size"]

    write_artifact(artifacts_dir, "table1.txt", format_table1(corpus))


def test_corpus_size_measured(corpus):
    stats = corpus.statistics()
    assert stats["size_bytes"] > 1024 * 1024  # multi-megabyte corpus
    assert stats["triples"] > 30_000
