"""The one-shot reproduction report: regenerated as a benchmark artifact.

Produces ``_artifacts/reproduction_report.md`` — every paper artifact in
one reviewable document — and measures the end-to-end report build (all
tables, coverage with inference, applications, profile, maintenance).
"""

import json

from repro.corpus import profile_corpus
from repro.report import build_report
from .conftest import write_artifact


def test_full_report(corpus, benchmark, artifacts_dir):
    text = benchmark.pedantic(build_report, args=(corpus,), rounds=2, iterations=1)

    assert "DEVIATES" not in text
    assert "**identical to the paper**" in text
    assert "corpus aligned" in text
    write_artifact(artifacts_dir, "reproduction_report.md", text)


def test_corpus_profile_artifact(corpus, benchmark, artifacts_dir):
    profile = benchmark.pedantic(profile_corpus, args=(corpus,), rounds=2, iterations=1)

    summary = profile.summary()
    assert summary["traces"] == 198
    write_artifact(artifacts_dir, "corpus_profile.json",
                   json.dumps(summary, indent=2, sort_keys=True))
