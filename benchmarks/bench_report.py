"""The one-shot reproduction report: regenerated as a benchmark artifact.

Produces ``_artifacts/reproduction_report.md`` — every paper artifact in
one reviewable document — and measures the end-to-end report build (all
tables, coverage with inference, applications, profile, maintenance).
"""

import datetime as dt
import json

import pytest

from repro.corpus import profile_corpus
from repro.report import build_report
from .conftest import write_artifact


def test_full_report(corpus, benchmark, artifacts_dir):
    text = benchmark.pedantic(build_report, args=(corpus,), rounds=2, iterations=1)

    assert "DEVIATES" not in text
    assert "**identical to the paper**" in text
    assert "corpus aligned" in text
    write_artifact(artifacts_dir, "reproduction_report.md", text)


def test_corpus_profile_artifact(corpus, benchmark, artifacts_dir):
    profile = benchmark.pedantic(profile_corpus, args=(corpus,), rounds=2, iterations=1)

    summary = profile.summary()
    assert summary["traces"] == 198
    write_artifact(artifacts_dir, "corpus_profile.json",
                   json.dumps(summary, indent=2, sort_keys=True))


def _registry_metrics() -> dict:
    """Headline observability counters at trajectory-record time.

    The benchmark session runs everything in one process, so the global
    metrics registry has accumulated the WAL fsyncs and query-cache
    traffic of every bench that ran before this file was collected.
    Recording the snapshot next to the timings lets future PRs correlate
    a latency move with a behavioural one (e.g. hit ratio collapsed).
    """
    from repro.obs import metrics

    hits = metrics.value("repro_query_cache_total", {"event": "hit"}) or 0
    misses = metrics.value("repro_query_cache_total", {"event": "miss"}) or 0
    evictions = metrics.value("repro_query_cache_total", {"event": "eviction"}) or 0
    lookups = hits + misses
    return {
        "wal_fsyncs": metrics.value("repro_store_wal_fsync_total") or 0,
        "query_cache_hits": hits,
        "query_cache_misses": misses,
        "query_cache_evictions": evictions,
        "query_cache_hit_ratio": round(hits / lookups, 4) if lookups else None,
    }


def test_query_cache_trajectory(artifacts_dir):
    """Fold this run's query-cache numbers into the cross-PR trajectory.

    ``bench_query_cache.py`` (collected before this file) writes
    ``query_cache.json``; here we append its headline numbers to
    ``query_cache_trajectory.json`` so future PRs can see whether the
    cold/warm latencies and concurrent throughput move.
    """
    current = artifacts_dir / "query_cache.json"
    if not current.exists():
        pytest.skip("bench_query_cache.py did not run in this session")
    data = json.loads(current.read_text())
    assert data["overall_speedup"] >= 5
    entry = {
        "recorded_at": dt.datetime.now().isoformat(timespec="seconds"),
        "cold_total_ms": data["cold_total_ms"],
        "warm_total_ms": data["warm_total_ms"],
        "overall_speedup": data["overall_speedup"],
        "throughput_qps": data.get("concurrent_endpoint", {}).get("throughput_qps"),
        "metrics": _registry_metrics(),
    }
    trajectory_path = artifacts_dir / "query_cache_trajectory.json"
    trajectory = json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    trajectory.append(entry)
    write_artifact(artifacts_dir, "query_cache_trajectory.json",
                   json.dumps(trajectory[-50:], indent=2))


def test_parallel_build_trajectory(artifacts_dir):
    """Fold this run's parallel-pipeline numbers into the trajectory.

    ``bench_parallel_build.py`` writes ``parallel_build.json``; its
    headline numbers (serial/parallel build and ingest wall time, the
    speedups, and the CPU count they were measured on) are appended to
    ``parallel_build_trajectory.json`` so future PRs can see whether the
    parallel fan-out or the serial baselines move.
    """
    current = artifacts_dir / "parallel_build.json"
    if not current.exists():
        pytest.skip("bench_parallel_build.py did not run in this session")
    data = json.loads(current.read_text())
    assert data["corpus_identical"] and data["store_identical"]
    entry = {
        "recorded_at": dt.datetime.now().isoformat(timespec="seconds"),
        "cpu_count": data["cpu_count"],
        "jobs": data["jobs"],
        "serial_build_s": data["serial_build_s"],
        "parallel_build_s": data["parallel_build_s"],
        "build_speedup": data["build_speedup"],
        "serial_ingest_s": data["serial_ingest_s"],
        "parallel_ingest_s": data["parallel_ingest_s"],
        "ingest_speedup": data["ingest_speedup"],
        "metrics": _registry_metrics(),
    }
    trajectory_path = artifacts_dir / "parallel_build_trajectory.json"
    trajectory = json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    trajectory.append(entry)
    write_artifact(artifacts_dir, "parallel_build_trajectory.json",
                   json.dumps(trajectory[-50:], indent=2))


def test_query_plan_trajectory(artifacts_dir):
    """Fold this run's EXPLAIN plan digests into the trajectory.

    ``bench_queries.py`` writes ``query_plans.json``; recording the
    Q1–Q6 digests per PR makes planner changes show up as an explicit
    digest flip in ``query_plan_trajectory.json`` instead of only as an
    unexplained latency move.
    """
    current = artifacts_dir / "query_plans.json"
    if not current.exists():
        pytest.skip("bench_queries.py did not run in this session")
    data = json.loads(current.read_text())
    assert sorted(data) == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
    entry = {
        "recorded_at": dt.datetime.now().isoformat(timespec="seconds"),
        "digests": {name: payload["digest"] for name, payload in sorted(data.items())},
    }
    trajectory_path = artifacts_dir / "query_plan_trajectory.json"
    trajectory = json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    trajectory.append(entry)
    write_artifact(artifacts_dir, "query_plan_trajectory.json",
                   json.dumps(trajectory[-50:], indent=2))


def test_paths_trajectory(artifacts_dir):
    """Fold this run's path-index numbers into the trajectory.

    ``bench_paths.py`` writes ``paths_bench.json``; the deep-lineage
    speedup, the closure-eval timings, and the trie mining cost are
    appended to ``paths_trajectory.json`` so future PRs can see whether
    the index keeps paying for itself.
    """
    current = artifacts_dir / "paths_bench.json"
    if not current.exists():
        pytest.skip("bench_paths.py did not run in this session")
    data = json.loads(current.read_text())
    assert data["deep_lineage"]["speedup"] >= 5
    entry = {
        "recorded_at": dt.datetime.now().isoformat(timespec="seconds"),
        "deep_lineage_speedup": data["deep_lineage"]["speedup"],
        "deep_lineage_queries": data["deep_lineage"]["queries"],
        "closure_eval_speedup": data["closure_eval"]["speedup"],
        "closure_rows": data["closure_eval"]["rows"],
        "frequent_patterns": data["frequent_patterns"]["patterns"],
        "trie_mine_s": data["frequent_patterns"]["trie_mine_s"],
        "metrics": _registry_metrics(),
    }
    trajectory_path = artifacts_dir / "paths_trajectory.json"
    trajectory = json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    trajectory.append(entry)
    write_artifact(artifacts_dir, "paths_trajectory.json",
                   json.dumps(trajectory[-50:], indent=2))


def test_scale_trajectory(artifacts_dir):
    """Fold this run's scale-out numbers into the trajectory.

    ``bench_scale.py`` writes ``scale_bench.json``; the per-scale ingest
    throughput, peak RSS, and Q1–Q6 cold latencies are appended to
    ``scale_trajectory.json`` so future PRs can see whether the
    streaming pipeline keeps its flat-memory, flat-throughput promise as
    the corpus grows.
    """
    current = artifacts_dir / "scale_bench.json"
    if not current.exists():
        pytest.skip("bench_scale.py did not run in this session")
    data = json.loads(current.read_text())
    assert len(data["points"]) >= 3
    assert data["rss_ratio"] < data["size_ratio"], "peak RSS grew superlinearly"
    entry = {
        "recorded_at": dt.datetime.now().isoformat(timespec="seconds"),
        "cpu_count": data["cpu_count"],
        "scales": data["scales"],
        "rss_ratio": data["rss_ratio"],
        "size_ratio": data["size_ratio"],
        "points": [
            {
                "scale": point["scale"],
                "quads": point["quads"],
                "ingest_quads_per_s": point["ingest_quads_per_s"],
                "peak_rss_mb": point["peak_rss_mb"],
                "q_cold_ms": {
                    name: q["cold_ms"] for name, q in sorted(point["queries"].items())
                },
            }
            for point in data["points"]
        ],
        "intern_terms_per_s": data["intern"]["terms_per_s"],
        "max_fold_s": data["intern"]["max_fold_s"],
        "metrics": _registry_metrics(),
    }
    trajectory_path = artifacts_dir / "scale_trajectory.json"
    trajectory = json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    trajectory.append(entry)
    write_artifact(artifacts_dir, "scale_trajectory.json",
                   json.dumps(trajectory[-50:], indent=2))


def test_store_trajectory(artifacts_dir):
    """Fold this run's persistent-store numbers into the trajectory.

    ``bench_store.py`` writes ``store_bench.json``; its headline numbers
    (cold ingest, no-op re-ingest, store-backed Q1) are appended to
    ``store_trajectory.json`` so future PRs can see whether ingest cost
    or the mmap read path move.
    """
    current = artifacts_dir / "store_bench.json"
    if not current.exists():
        pytest.skip("bench_store.py did not run in this session")
    data = json.loads(current.read_text())
    assert data["cold_ingest"]["parsed_files"] == 198
    assert data["noop_reingest"]["parsed_files"] == 0
    entry = {
        "recorded_at": dt.datetime.now().isoformat(timespec="seconds"),
        "cold_ingest_s": data["cold_ingest"]["duration_s"],
        "noop_reingest_s": data["noop_reingest"]["duration_s"],
        "quads": data.get("query", {}).get("quads"),
        "q1_cold_ms": data.get("query", {}).get("q1_cold_ms"),
        "q1_warm_ms": data.get("query", {}).get("q1_warm_ms"),
        "metrics": _registry_metrics(),
    }
    trajectory_path = artifacts_dir / "store_trajectory.json"
    trajectory = json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    trajectory.append(entry)
    write_artifact(artifacts_dir, "store_trajectory.json",
                   json.dumps(trajectory[-50:], indent=2))
