"""Experiment Q1–Q6 — the Section 4 exemplar queries.

One benchmark per exemplar query, evaluated with the SPARQL engine over
the full corpus dataset, asserting the paper-documented behavior (incl.
the system restrictions: Q4 timestamps Taverna-only, Q6 Wings-only).
"""

import json

import pytest

from repro.queries import CorpusQueries, exemplar_queries, taverna_workflow_iri, \
    wings_template_iri
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS
from .conftest import write_artifact


@pytest.fixture(scope="module")
def queries(corpus_dataset):
    return CorpusQueries(corpus_dataset)


@pytest.fixture(scope="module")
def taverna_trace(corpus):
    return next(t for t in corpus.by_system("taverna") if not t.failed)


@pytest.fixture(scope="module")
def wings_trace(corpus):
    return next(t for t in corpus.by_system("wings") if not t.failed)


def test_q1_workflow_runs(queries, benchmark, artifacts_dir):
    table = benchmark(queries.workflow_runs)
    assert len(table) == 198
    assert all(row.start is not None for row in table)
    write_artifact(artifacts_dir, "query1_runs.csv", table.to_csv())


def test_q2_runs_of_template(queries, corpus, benchmark):
    template_id = next(t for t in corpus.multi_run_templates() if t.startswith("t-"))
    template = corpus.templates[template_id]
    iri = taverna_workflow_iri(template_id, template.name)

    counts = benchmark(queries.runs_of_template, iri)

    assert counts["total"] == 3


def test_q3_template_io(queries, corpus, taverna_trace, benchmark):
    template = corpus.templates[taverna_trace.template_id]
    iri = taverna_workflow_iri(template.template_id, template.name)

    io = benchmark(queries.template_io, iri)

    assert io
    for entry in io.values():
        assert entry["inputs"]


def test_q4_process_runs_taverna(queries, taverna_trace, benchmark):
    iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")

    rows = benchmark(queries.process_runs, iri)

    assert len(rows) > 0
    assert all(row.start is not None for row in rows)  # Taverna-only timestamps


def test_q4_process_runs_wings_no_timestamps(queries, wings_trace):
    iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings_trace.run_id}")
    rows = queries.process_runs(iri)
    assert len(rows) > 0
    assert all(row.start is None for row in rows)


def test_q5_who_executed(queries, taverna_trace, wings_trace, benchmark):
    taverna_iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")

    agents = benchmark(queries.who_executed, taverna_iri)

    assert agents == ["http://ns.taverna.org.uk/2011/software/taverna-2.4.0"]
    wings_iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings_trace.run_id}")
    assert queries.who_executed(wings_iri) == [
        f"http://www.opmw.org/export/resource/Agent/{wings_trace.user}"
    ]


def test_query_plan_digests(queries, corpus, artifacts_dir):
    """EXPLAIN every exemplar query and pin the plan digests.

    The digests are deterministic for a given corpus build, so this
    artifact (``query_plans.json``) turns silent planner changes into a
    visible diff in the cross-PR trajectory (see ``bench_report.py``).
    """
    texts = exemplar_queries(corpus)
    plans = {name: queries.engine.explain(text) for name, text in texts.items()}
    again = {name: queries.engine.explain(text) for name, text in texts.items()}
    assert {n: p.digest for n, p in plans.items()} == \
        {n: p.digest for n, p in again.items()}
    payload = {
        name: {
            "digest": plan.digest,
            "operators": plan.trace_args()["plan_operators"],
            "text": plan.to_text(),
        }
        for name, plan in sorted(plans.items())
    }
    write_artifact(artifacts_dir, "query_plans.json", json.dumps(payload, indent=2))


def test_q6_services_wings_only(queries, taverna_trace, wings_trace, benchmark):
    wings_iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings_trace.run_id}")

    services = benchmark(queries.services_executed, wings_iri)

    assert services
    taverna_iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")
    assert queries.services_executed(taverna_iri) == []
