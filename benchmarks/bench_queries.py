"""Experiment Q1–Q6 — the Section 4 exemplar queries.

One benchmark per exemplar query, evaluated with the SPARQL engine over
the full corpus dataset, asserting the paper-documented behavior (incl.
the system restrictions: Q4 timestamps Taverna-only, Q6 Wings-only).
"""

import json
import time

import pytest

from repro.queries import CorpusQueries, Q1_WORKFLOW_RUNS, exemplar_queries, \
    taverna_workflow_iri, wings_template_iri
from repro.sparql import QueryEngine
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS
from .conftest import write_artifact


@pytest.fixture(scope="module")
def queries(corpus_dataset):
    return CorpusQueries(corpus_dataset)


@pytest.fixture(scope="module")
def store_pair(tmp_path_factory, corpus):
    """(StoreDataset, QuadStore) over the full corpus, for the encoded
    pipeline benches (probe counters live on the store)."""
    from repro.corpus import write_corpus
    from repro.store import QuadStore, StoreDataset, ingest_corpus

    corpus_dir = tmp_path_factory.mktemp("bench-queries-corpus")
    write_corpus(corpus, corpus_dir)
    store = QuadStore(tmp_path_factory.mktemp("bench-queries-store") / "store")
    ingest_corpus(store, corpus_dir)
    yield StoreDataset(store), store
    store.close()


@pytest.fixture(scope="module")
def taverna_trace(corpus):
    return next(t for t in corpus.by_system("taverna") if not t.failed)


@pytest.fixture(scope="module")
def wings_trace(corpus):
    return next(t for t in corpus.by_system("wings") if not t.failed)


def test_q1_workflow_runs(queries, benchmark, artifacts_dir):
    table = benchmark(queries.workflow_runs)
    assert len(table) == 198
    assert all(row.start is not None for row in table)
    write_artifact(artifacts_dir, "query1_runs.csv", table.to_csv())


def test_q2_runs_of_template(queries, corpus, benchmark):
    template_id = next(t for t in corpus.multi_run_templates() if t.startswith("t-"))
    template = corpus.templates[template_id]
    iri = taverna_workflow_iri(template_id, template.name)

    counts = benchmark(queries.runs_of_template, iri)

    assert counts["total"] == 3


def test_q3_template_io(queries, corpus, taverna_trace, benchmark):
    template = corpus.templates[taverna_trace.template_id]
    iri = taverna_workflow_iri(template.template_id, template.name)

    io = benchmark(queries.template_io, iri)

    assert io
    for entry in io.values():
        assert entry["inputs"]


def test_q4_process_runs_taverna(queries, taverna_trace, benchmark):
    iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")

    rows = benchmark(queries.process_runs, iri)

    assert len(rows) > 0
    assert all(row.start is not None for row in rows)  # Taverna-only timestamps


def test_q4_process_runs_wings_no_timestamps(queries, wings_trace):
    iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings_trace.run_id}")
    rows = queries.process_runs(iri)
    assert len(rows) > 0
    assert all(row.start is None for row in rows)


def test_q5_who_executed(queries, taverna_trace, wings_trace, benchmark):
    taverna_iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")

    agents = benchmark(queries.who_executed, taverna_iri)

    assert agents == ["http://ns.taverna.org.uk/2011/software/taverna-2.4.0"]
    wings_iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings_trace.run_id}")
    assert queries.who_executed(wings_iri) == [
        f"http://www.opmw.org/export/resource/Agent/{wings_trace.user}"
    ]


def test_query_plan_digests(queries, corpus, artifacts_dir):
    """EXPLAIN every exemplar query and pin the plan digests.

    The digests are deterministic for a given corpus build, so this
    artifact (``query_plans.json``) turns silent planner changes into a
    visible diff in the cross-PR trajectory (see ``bench_report.py``).
    """
    texts = exemplar_queries(corpus)
    plans = {name: queries.engine.explain(text) for name, text in texts.items()}
    again = {name: queries.engine.explain(text) for name, text in texts.items()}
    assert {n: p.digest for n, p in plans.items()} == \
        {n: p.digest for n, p in again.items()}
    payload = {
        name: {
            "digest": plan.digest,
            "operators": plan.trace_args()["plan_operators"],
            "text": plan.to_text(),
        }
        for name, plan in sorted(plans.items())
    }
    write_artifact(artifacts_dir, "query_plans.json", json.dumps(payload, indent=2))


def _canon_rows(rows):
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in row.asdict().items()))
        for row in rows
    )


#: A lineage join over the three densest provenance predicates — every
#: step after the first joins on a variable that sits in a segment sort
#: prefix, so the encoded pipeline runs it entirely with sorted-key
#: galloping merges.
LINEAGE_JOIN = """
SELECT ?act ?ent ?t WHERE {
  ?act prov:used ?ent .
  ?ent prov:wasGeneratedBy ?gen .
  ?act prov:startedAtTime ?t .
}
"""


def test_encoded_vs_decoded_pipeline(store_pair, corpus_dataset, artifacts_dir):
    """The encoded id-space pipeline vs the per-binding decoded baseline.

    Two workloads: the merge-join-eligible lineage join (batch merges
    dominate — strictly fewer probes *and* a faster best-of-3 cold run)
    and exemplar Q1 (dominated by per-solution ``FILTER NOT EXISTS``
    re-evaluations that cannot batch, so only the probe reduction is
    asserted and latency is just recorded).  Rows must be byte-identical
    across both pipelines and the in-memory evaluator throughout; the
    numbers land in ``query_encoded.json``.
    """
    from repro.sparql.encoded import _SCAN_STRATEGY

    store_ds, store = store_pair

    def run_cold(query, encoded):
        """Best-of-3 cold evaluations (fresh engine each round: empty
        result cache); probes are deterministic, so last round's do."""
        best_s, rows, probes = None, None, None
        for _ in range(3):
            engine = QueryEngine(store_ds, encoded=encoded)
            before = store.runtime_counters()[0]
            started = time.perf_counter()
            rows = engine.query(query)
            elapsed = time.perf_counter() - started
            probes = store.runtime_counters()[0] - before
            best_s = elapsed if best_s is None else min(best_s, elapsed)
        return rows, best_s, probes

    payload = {}
    for name, query in [("lineage_join", LINEAGE_JOIN),
                        ("q1_workflow_runs", Q1_WORKFLOW_RUNS)]:
        merge_before = _SCAN_STRATEGY.labels("merge").value
        bisect_before = _SCAN_STRATEGY.labels("bisect").value
        encoded_rows, encoded_s, encoded_probes = run_cold(query, encoded=True)
        merge_batches = _SCAN_STRATEGY.labels("merge").value - merge_before
        bisect_batches = _SCAN_STRATEGY.labels("bisect").value - bisect_before
        decoded_rows, decoded_s, decoded_probes = run_cold(query, encoded=False)

        # Encoded vs decoded over the same store: byte-identical rows in
        # identical order.  Vs the in-memory evaluator: the same row
        # *multiset* (these queries carry no ORDER BY, and store scans
        # run in id order, not memory insertion order).
        assert [r.asdict() for r in encoded_rows] == \
            [r.asdict() for r in decoded_rows]
        memory_rows = QueryEngine(corpus_dataset).query(query)
        assert _canon_rows(encoded_rows) == _canon_rows(memory_rows)
        assert merge_batches > 0
        assert encoded_probes < decoded_probes

        payload[name] = {
            "rows": len(encoded_rows),
            "encoded": {
                "cold_ms": round(encoded_s * 1000, 3),
                "segment_probes": encoded_probes,
                "merge_batches": merge_batches,
                "bisect_batches": bisect_batches,
            },
            "decoded": {
                "cold_ms": round(decoded_s * 1000, 3),
                "segment_probes": decoded_probes,
            },
            "probe_reduction": round(1 - encoded_probes / decoded_probes, 4),
        }

    assert payload["q1_workflow_runs"]["rows"] == 198
    # The merge-join workload must win outright on the wall clock too.
    lineage = payload["lineage_join"]
    assert lineage["encoded"]["cold_ms"] < lineage["decoded"]["cold_ms"]

    write_artifact(artifacts_dir, "query_encoded.json",
                   json.dumps(payload, indent=2))


def test_q6_services_wings_only(queries, taverna_trace, wings_trace, benchmark):
    wings_iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings_trace.run_id}")

    services = benchmark(queries.services_executed, wings_iri)

    assert services
    taverna_iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")
    assert queries.services_executed(taverna_iri) == []
