"""Experiment S2 — Section 2 statistics: 120 workflows / 198 runs / 30 failed.

Benchmarks the run-planning computation and (separately, marked slow) a
full corpus build, asserting the paper's corpus-creation numbers: every
workflow executed at least once, 198 runs total, 30 failures with the
documented cause profile (third-party resource unavailability leading).
"""

import json

from repro.corpus import CorpusBuilder, FAILURE_MIX
from .conftest import write_artifact


def test_run_plan(benchmark):
    builder = CorpusBuilder(seed=2013)
    templates = builder.generator.all_templates()

    plan = benchmark(builder.plan_runs, templates)

    assert len(plan) == 198
    assert len({e.template_id for e in plan}) == 120
    failing = [e for e in plan if e.will_fail]
    assert len(failing) == 30
    causes = {}
    for entry in failing:
        causes[entry.fault_cause] = causes.get(entry.fault_cause, 0) + 1
    assert causes == FAILURE_MIX


def test_full_build(benchmark, artifacts_dir):
    def build():
        return CorpusBuilder(seed=2013).build()

    corpus = benchmark.pedantic(build, rounds=1, iterations=1)

    stats = corpus.statistics()
    assert stats["workflows"] == 120
    assert stats["runs"] == 198
    assert stats["failed_runs"] == 30
    assert stats["failure_causes"] == FAILURE_MIX
    write_artifact(artifacts_dir, "section2_stats.json",
                   json.dumps(stats, indent=2, sort_keys=True))


def test_failed_runs_truncated(corpus):
    for trace in corpus.failed_traces():
        executed = set(trace.result.executed_steps())
        planned = set(corpus.templates[trace.template_id].processors)
        assert executed < planned or trace.result.failed_step in executed
