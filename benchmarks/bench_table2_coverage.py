"""Experiment T2 — Table 2: coverage of starting-point PROV terms.

Scans each system's merged trace graph for the 12 starting-point terms
and checks the result cell-for-cell against the paper's table.
"""

from repro.coverage import (
    PAPER_TABLE2,
    SUPPORT_ABSENT,
    SUPPORT_INFERRED,
    coverage_report,
    format_table2,
)
from repro.prov.constants import STARTING_POINT_TERMS
from repro.coverage import scan_term
from .conftest import write_artifact


def test_table2_cells_match_paper(taverna_graph, wings_graph, benchmark, artifacts_dir):
    report = benchmark(coverage_report, taverna_graph, wings_graph)

    for entry in report.starting_point:
        expected = PAPER_TABLE2[entry.term.name]
        measured = (
            SUPPORT_ABSENT if entry.taverna == SUPPORT_INFERRED else entry.taverna,
            SUPPORT_ABSENT if entry.wings == SUPPORT_INFERRED else entry.wings,
        )
        assert measured == expected, entry.term.name

    write_artifact(artifacts_dir, "table2.txt", format_table2(report))


def test_term_scan_speed(taverna_graph, benchmark):
    """The raw scan primitive: all 12 starting-point terms over one system."""

    def scan_all():
        return [scan_term(taverna_graph, term) for term in STARTING_POINT_TERMS]

    results = benchmark(scan_all)
    assert len(results) == 12
