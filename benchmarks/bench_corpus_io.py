"""Corpus I/O benchmarks: serialization formats and the disk layout.

Not a paper table, but the operations every corpus consumer pays for:
writing the ProvBench directory, loading it back, and converting a trace
between the PROV family serializations.
"""

import pytest

from repro.corpus import load_corpus, write_corpus
from repro.prov import parse_provn, serialize_provn, serialize_provxml
from repro.rdf import parse_turtle, serialize_turtle


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory, corpus):
    root = tmp_path_factory.mktemp("bench-corpus")
    write_corpus(corpus, root)
    return root


def test_write_corpus(corpus, tmp_path_factory, benchmark):
    def write():
        root = tmp_path_factory.mktemp("bench-write")
        return write_corpus(corpus, root)

    manifest = benchmark.pedantic(write, rounds=3, iterations=1)
    assert manifest.exists()


def test_load_corpus(corpus_dir, benchmark):
    stored = benchmark.pedantic(load_corpus, args=(corpus_dir,), rounds=3, iterations=1)
    assert len(stored.traces) == 198


def test_turtle_roundtrip_per_trace(corpus, benchmark):
    trace = next(t for t in corpus.by_system("taverna") if not t.failed)

    def roundtrip():
        return parse_turtle(serialize_turtle(trace.graph()))

    graph = benchmark(roundtrip)
    assert len(graph) == len(trace.graph())


def test_provn_roundtrip_per_trace(corpus, benchmark):
    trace = next(t for t in corpus.by_system("taverna") if not t.failed)

    def roundtrip():
        return parse_provn(serialize_provn(trace.document))

    document = benchmark(roundtrip)
    assert document.statistics() == trace.document.statistics()


def test_provxml_serialize_per_trace(corpus, benchmark):
    trace = next(t for t in corpus.by_system("wings") if not t.failed)

    text = benchmark(serialize_provxml, trace.document)
    assert text.startswith("<?xml")
