"""Ablation — triple indexes vs. linear scan (DESIGN.md §5).

The graph keeps SPO/POS/OSP hash indexes; this ablation measures what
they buy on the corpus-scale graph for the access patterns the coverage
scanner and the queries actually use (bound predicate; bound subject).
"""

import pytest

from repro.rdf.namespace import PROV, RDF


@pytest.fixture(scope="module")
def graph(taverna_graph):
    return taverna_graph


def test_indexed_predicate_lookup(graph, benchmark):
    result = benchmark(lambda: sum(1 for _ in graph.triples(None, PROV.used, None)))
    assert result > 0


def test_scan_predicate_lookup(graph, benchmark):
    result = benchmark(lambda: sum(1 for _ in graph.triples_scan(None, PROV.used, None)))
    assert result > 0


def test_indexed_type_lookup(graph, benchmark):
    from repro.vocab import wfprov

    result = benchmark(
        lambda: sum(1 for _ in graph.triples(None, RDF.type, wfprov.ProcessRun))
    )
    assert result > 0


def test_scan_type_lookup(graph, benchmark):
    from repro.vocab import wfprov

    result = benchmark(
        lambda: sum(1 for _ in graph.triples_scan(None, RDF.type, wfprov.ProcessRun))
    )
    assert result > 0


def test_index_and_scan_agree(graph):
    indexed = set(graph.triples(None, PROV.used, None))
    scanned = set(graph.triples_scan(None, PROV.used, None))
    assert indexed == scanned
