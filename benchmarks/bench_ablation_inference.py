"""Ablation — eager vs. on-demand inference for Table 3 (DESIGN.md §5).

The starred Table 3 cells need to know whether a term is *inferable*.
Two strategies:

* **eager** — materialize the full inference closure once, then do O(1)
  term lookups (what `coverage_report` does);
* **on-demand** — for each additional term, run only the rule that could
  produce it, without materializing anything.

The bench measures both on the Taverna trace graph, where the stars live.
"""

import pytest

from repro.prov.constants import ADDITIONAL_TERMS
from repro.prov.inference import ProvInferencer, inferred_graph
from repro.coverage import scan_term
from repro.rdf.namespace import PROV, RDF


def _eager(graph):
    closure = inferred_graph(graph)
    return {term.name: scan_term(closure, term) for term in ADDITIONAL_TERMS}


def _on_demand(graph):
    """Check each Table 3 term with only its producing rule."""
    inferencer = ProvInferencer(graph)
    results = {}
    plan_new = inferencer.apply_plan_from_had_plan()
    influence_new = inferencer.apply_influence_subproperties()
    derivation_new = inferencer.apply_derivation_subproperties()
    for term in ADDITIONAL_TERMS:
        direct = scan_term(graph, term)
        if direct:
            results[term.name] = True
        elif term.iri == PROV.Plan:
            results[term.name] = any(t.predicate == RDF.type and t.object == PROV.Plan
                                     for t in plan_new)
        elif term.iri == PROV.wasInfluencedBy:
            results[term.name] = bool(influence_new)
        elif term.iri == PROV.hadPrimarySource:
            results[term.name] = False  # no rule produces it
        else:
            results[term.name] = False
    return results


def test_eager_inference(taverna_graph, benchmark):
    results = benchmark(_eager, taverna_graph)
    assert results["prov:Plan"] is True
    assert results["prov:wasInfluencedBy"] is True
    assert results["prov:Bundle"] is False


def test_on_demand_inference(taverna_graph, benchmark):
    results = benchmark(_on_demand, taverna_graph)
    assert results["prov:Plan"] is True
    assert results["prov:wasInfluencedBy"] is True
    assert results["prov:Bundle"] is False


def test_strategies_agree(taverna_graph, wings_graph):
    for graph in (taverna_graph, wings_graph):
        assert _eager(graph) == _on_demand(graph)
