"""Experiment E1 — the SPARQL endpoint (Section 6 future work).

Serves the full corpus over HTTP and benchmarks round-trip query latency
for a representative exemplar query.
"""

import pytest

from repro.endpoint import SparqlClient, SparqlEndpoint
from repro.queries import Q1_WORKFLOW_RUNS


@pytest.fixture(scope="module")
def server(corpus_dataset):
    endpoint = SparqlEndpoint(corpus_dataset).start()
    yield endpoint
    endpoint.stop()


def test_endpoint_q1_roundtrip(server, benchmark):
    client = SparqlClient(server.query_url)

    rows = benchmark(client.query, Q1_WORKFLOW_RUNS)

    assert len(rows) == 198


def test_endpoint_ask_latency(server, benchmark):
    client = SparqlClient(server.query_url)

    result = benchmark(client.query, "ASK { ?x a prov:Bundle }")

    assert result is True
