"""Parallel pipeline benchmark: serial vs. multiprocess build + ingest.

Measures the two process-parallel hot paths side by side with their
serial baselines — the full 198-run corpus build (execute + export +
serialize per run) and the store ingest (parse + intern + WAL) — and
verifies the headline guarantee while doing so: the parallel corpus
tree and store segments are byte-identical to serial output.

Speedup depends on the machine: the schedule pre-pass and the
single-writer commit loop are serial by design, and on a single-CPU
runner the pool only adds overhead, so ``cpu_count`` is recorded next
to the timings rather than asserting a ratio.  Numbers land in
``_artifacts/parallel_build.json``; ``bench_report.py`` folds them into
the cross-PR trajectory.

Also runnable standalone as the CI determinism smoke::

    PYTHONPATH=src python benchmarks/bench_parallel_build.py --smoke
"""

import hashlib
import json
import os
import time
from pathlib import Path


def _tree_digests(root: Path) -> dict:
    return {
        path.relative_to(root).as_posix(): hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(root).rglob("*"))
        if path.is_file()
    }


def measure_parallel_pipeline(workdir: Path, jobs: int) -> dict:
    """Time serial vs. parallel build and ingest; verify byte-identity."""
    from repro.corpus import CorpusBuilder, write_corpus
    from repro.store import QuadStore, ingest_corpus

    started = time.perf_counter()
    serial_corpus = CorpusBuilder(seed=2013).build()
    serial_build_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel_corpus = CorpusBuilder(seed=2013).build(jobs=jobs)
    parallel_build_s = time.perf_counter() - started

    serial_root = workdir / "corpus-serial"
    parallel_root = workdir / "corpus-parallel"
    write_corpus(serial_corpus, serial_root)
    write_corpus(parallel_corpus, parallel_root)
    corpus_identical = _tree_digests(serial_root) == _tree_digests(parallel_root)

    started = time.perf_counter()
    with QuadStore(workdir / "store-serial") as store:
        serial_report = ingest_corpus(store, serial_root)
    serial_ingest_s = time.perf_counter() - started

    started = time.perf_counter()
    with QuadStore(workdir / "store-parallel") as store:
        parallel_report = ingest_corpus(store, serial_root, jobs=jobs)
    parallel_ingest_s = time.perf_counter() - started

    store_identical = _tree_digests(workdir / "store-serial") == _tree_digests(
        workdir / "store-parallel"
    )
    return {
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "runs": len(serial_corpus.traces),
        "serial_build_s": round(serial_build_s, 3),
        "parallel_build_s": round(parallel_build_s, 3),
        "build_speedup": round(serial_build_s / parallel_build_s, 3),
        "serial_ingest_s": round(serial_ingest_s, 3),
        "parallel_ingest_s": round(parallel_ingest_s, 3),
        "ingest_speedup": round(serial_ingest_s / parallel_ingest_s, 3),
        "quads_ingested": serial_report.quads_added,
        "corpus_identical": corpus_identical,
        "store_identical": store_identical and (
            parallel_report.quads_added == serial_report.quads_added
        ),
    }


def measure_instrumentation_overhead(rounds: int = 2) -> dict:
    """Best-of-N serial build with metrics disabled vs. fully observed.

    The observability layer promises that instrumentation is cheap: every
    registry mutation starts with a single enabled-flag check, and hot
    loops count into plain ints that collectors mirror later.  This
    measures that promise on the heaviest instrumented path — the full
    198-run build — with the registry disabled versus enabled *plus* an
    active span tracer *plus* an attached shared-memory metric shard
    (flushed and scraped through the k-way aggregator each round, the way
    an ``--obs-dir`` run would be), and reports the wall-clock ratio.
    """
    import tempfile

    from repro.corpus import CorpusBuilder
    from repro.obs import metrics, shm
    from repro.obs.trace import Tracer

    registry = metrics.get_registry()
    was_enabled = registry.enabled
    span_events = 0
    scrape_series = 0
    try:
        registry.set_enabled(False)
        disabled_s = min(
            _timed(lambda: CorpusBuilder(seed=2013).build()) for _ in range(rounds)
        )
        registry.set_enabled(True)
        instrumented_s = None
        with tempfile.TemporaryDirectory(prefix="obs-bench-") as obs_dir:
            shm.configure(obs_dir)
            for _ in range(rounds):
                tracer = Tracer()

                def observed_build():
                    CorpusBuilder(seed=2013).build(tracer=tracer)
                    shm.flush()
                    shm.render_aggregated(obs_dir, registry=registry)

                elapsed = _timed(observed_build)
                span_events = len(tracer.events())
                if instrumented_s is None or elapsed < instrumented_s:
                    instrumented_s = elapsed
            series, _ = shm.aggregate(obs_dir, sweep=False)
            scrape_series = len(series)
            shm.unconfigure()
    finally:
        registry.set_enabled(was_enabled)
    return {
        "rounds": rounds,
        "disabled_s": round(disabled_s, 3),
        "instrumented_s": round(instrumented_s, 3),
        "overhead_ratio": round(instrumented_s / disabled_s, 4),
        "span_events": span_events,
        "scrape_series": scrape_series,
    }


def measure_profiler_overhead(rounds: int = 2) -> dict:
    """Best-of-N serial build bare vs. under the always-on profiler.

    The profiler's cost model: one ``sys._current_frames()`` walk per
    tick on a background thread, zero instrumentation on the observed
    code.  Measured at the default rate on the heaviest path (the full
    198-run build) the wall-clock ratio must stay within the same
    ≤1.05× envelope the metrics/tracer instrumentation promises.
    """
    from repro.corpus import CorpusBuilder
    from repro.obs import profiler

    # One warmup build (caches, imports), then alternate bare/profiled
    # rounds so machine-load drift hits both sides equally; best-of-N
    # against best-of-N isolates the profiler's own cost from noise.
    CorpusBuilder(seed=2013).build()
    bare_s = None
    profiled_s = None
    snapshot = {}
    for _ in range(rounds):
        elapsed = _timed(lambda: CorpusBuilder(seed=2013).build())
        if bare_s is None or elapsed < bare_s:
            bare_s = elapsed
        prof = profiler.start(hz=profiler.DEFAULT_HZ)
        try:
            elapsed = _timed(lambda: CorpusBuilder(seed=2013).build())
        finally:
            snapshot = prof.snapshot()
            profiler.stop()
        if profiled_s is None or elapsed < profiled_s:
            profiled_s = elapsed
    return {
        "rounds": rounds,
        "hz": profiler.DEFAULT_HZ,
        "bare_s": round(bare_s, 3),
        "profiled_s": round(profiled_s, 3),
        "overhead_ratio": round(profiled_s / bare_s, 4),
        "samples_kept": snapshot.get("samples_kept", 0),
        "samples_dropped": snapshot.get("samples_dropped", 0),
        "profiler_self_s": snapshot.get("overhead_s", 0.0),
    }


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_parallel_build_and_ingest(tmp_path_factory, artifacts_dir):
    from .conftest import write_artifact

    jobs = min(4, max(2, os.cpu_count() or 1))
    result = measure_parallel_pipeline(tmp_path_factory.mktemp("parallel-bench"), jobs)
    assert result["corpus_identical"], "parallel build diverged from serial"
    assert result["store_identical"], "parallel ingest diverged from serial"
    result["instrumentation"] = measure_instrumentation_overhead()
    assert result["instrumentation"]["span_events"] > 0
    result["profiler"] = measure_profiler_overhead()
    assert result["profiler"]["samples_kept"] > 0
    write_artifact(artifacts_dir, "parallel_build.json", json.dumps(result, indent=2))


def _main() -> int:
    import argparse
    import sys
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one measurement round; exit non-zero unless parallel output "
             "is byte-identical to serial and instrumentation overhead "
             "stays within 5%%",
    )
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes (default: min(4, CPUs))")
    args = parser.parse_args()
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    jobs = args.jobs if args.jobs > 0 else min(4, max(2, os.cpu_count() or 1))
    with tempfile.TemporaryDirectory(prefix="parallel-bench-") as tmp:
        result = measure_parallel_pipeline(Path(tmp), jobs)
    result["instrumentation"] = measure_instrumentation_overhead(
        rounds=3 if args.smoke else 2
    )
    result["profiler"] = measure_profiler_overhead(rounds=3 if args.smoke else 2)
    print(json.dumps(result, indent=2))
    if not (result["corpus_identical"] and result["store_identical"]):
        print("FAIL: parallel output diverged from serial", file=sys.stderr)
        return 1
    if args.smoke:
        ratio = result["instrumentation"]["overhead_ratio"]
        if ratio > 1.05:
            print(f"FAIL: instrumentation overhead {ratio:.3f}x exceeds 1.05x",
                  file=sys.stderr)
            return 1
        profiler_ratio = result["profiler"]["overhead_ratio"]
        if profiler_ratio > 1.05:
            print(f"FAIL: profiler overhead {profiler_ratio:.3f}x exceeds 1.05x",
                  file=sys.stderr)
            return 1
        print("smoke OK: parallel pipeline byte-identical to serial; "
              f"instrumentation overhead {ratio:.3f}x; "
              f"profiler overhead {profiler_ratio:.3f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
