"""Persistent store benchmarks: ingest cost, incremental no-op, queries.

Measures what the dictionary-encoded quad store buys on the corpus
lifecycle path:

* cold ingest of the full 198-run ProvBench directory (parse + WAL +
  compaction into the four sorted segments);
* the incremental no-op: re-ingesting an unchanged corpus must skip all
  198 files by content hash, at a small fraction of the cold cost;
* store-backed query latency: a fresh process answering Q1 straight off
  the mmap'd segments (cold) vs. the engine's warm result cache, checked
  against the in-memory dataset's answer.

Numbers land in ``_artifacts/store_bench.json``; ``bench_report.py``
appends them to the cross-PR trajectory file.
"""

import json
import time

import pytest

from repro.corpus import load_corpus, write_corpus
from repro.queries import Q1_WORKFLOW_RUNS
from repro.sparql import QueryEngine
from repro.store import QuadStore, ingest_corpus

from .conftest import write_artifact

_ARTIFACT = {}


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory, corpus):
    root = tmp_path_factory.mktemp("bench-store-corpus")
    write_corpus(corpus, root)
    return root


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, corpus_dir):
    """A store built once, reused by the no-op and query benches."""
    store_path = tmp_path_factory.mktemp("bench-store") / "store"
    with QuadStore(store_path) as store:
        ingest_corpus(store, corpus_dir)
    return store_path


def test_cold_ingest(corpus_dir, tmp_path_factory, benchmark, artifacts_dir):
    def ingest():
        with QuadStore(tmp_path_factory.mktemp("cold") / "store") as store:
            return ingest_corpus(store, corpus_dir)

    report = benchmark.pedantic(ingest, rounds=2, iterations=1)
    assert len(report.parsed) == 198
    assert not report.rebuilt
    _ARTIFACT["cold_ingest"] = report.summary()
    write_artifact(artifacts_dir, "store_bench.json", json.dumps(_ARTIFACT, indent=2))


def test_noop_reingest(corpus_dir, store_dir, benchmark, artifacts_dir):
    """Unchanged corpus: every file skipped by hash, zero files parsed."""
    with QuadStore(store_dir) as store:
        report = benchmark.pedantic(
            ingest_corpus, args=(store, corpus_dir), rounds=3, iterations=1
        )
    assert report.no_op
    assert len(report.skipped) == 198
    cold_s = _ARTIFACT.get("cold_ingest", {}).get("duration_s")
    if cold_s:
        # hashing 198 small files must be far cheaper than parsing them
        assert report.duration_s * 5 <= cold_s
    _ARTIFACT["noop_reingest"] = report.summary()
    write_artifact(artifacts_dir, "store_bench.json", json.dumps(_ARTIFACT, indent=2))


def test_store_cold_vs_warm_q1(corpus_dir, store_dir, corpus_dataset, artifacts_dir):
    """Q1 over the mmap'd store, cold open vs. warm result cache."""
    opened = time.perf_counter()
    stored = load_corpus(corpus_dir, store=store_dir)
    open_s = time.perf_counter() - opened
    with stored:
        engine = QueryEngine(stored.dataset())
        started = time.perf_counter()
        rows = engine.query(Q1_WORKFLOW_RUNS)
        cold_s = time.perf_counter() - started
        warm_rounds = 10
        started = time.perf_counter()
        for _ in range(warm_rounds):
            engine.query(Q1_WORKFLOW_RUNS)
        warm_s = (time.perf_counter() - started) / warm_rounds
        info = stored.store.store_info()
    assert len(rows) == 198
    assert len(QueryEngine(corpus_dataset).query(Q1_WORKFLOW_RUNS)) == len(rows)
    _ARTIFACT["query"] = {
        "store_open_ms": round(open_s * 1000, 3),
        "q1_cold_ms": round(cold_s * 1000, 3),
        "q1_warm_ms": round(warm_s * 1000, 6),
        "quads": info["quads"],
        "terms": info["terms"],
        "segment_bytes": sum(s["bytes"] for s in info["segments"].values()),
    }
    write_artifact(artifacts_dir, "store_bench.json", json.dumps(_ARTIFACT, indent=2))
