"""Experiment F1 — Figure 1: domains of workflows.

Regenerates the per-domain workflow histogram split by system and checks
its shape: 12 domains, 70 Taverna + 50 Wings = 120 workflows, with the
documented system profile (life sciences dominated by Taverna,
data-analysis domains by Wings).
"""

from repro.corpus import DOMAINS
from .conftest import write_artifact


def _histogram(corpus):
    return corpus.domain_histogram()


def test_figure1_shape(corpus, artifacts_dir, benchmark):
    histogram = benchmark(_histogram, corpus)

    assert len(histogram) == 12
    assert sum(t for _, t, _ in histogram) == 70
    assert sum(w for _, _, w in histogram) == 50

    by_name = {name: (t, w) for name, t, w in histogram}
    # Shape assertions mirroring the figure's documented profile:
    assert by_name["Bioinformatics"][0] == max(t for _, t, _ in histogram)
    assert by_name["Machine Learning"][1] > by_name["Machine Learning"][0]
    assert by_name["Biodiversity"][1] == 0  # Taverna-only domain
    assert by_name["Bioinformatics"][0] > by_name["Bioinformatics"][1]

    width = max(len(d.name) for d in DOMAINS)
    lines = ["Figure 1: Domains of workflows  (# = Taverna, * = Wings)"]
    for name, taverna, wings in histogram:
        lines.append(f"{name.ljust(width)}  {'#' * taverna}{'*' * wings}  ({taverna}T {wings}W)")
    write_artifact(artifacts_dir, "figure1.txt", "\n".join(lines))


def test_histogram_consistent_with_built_templates(corpus):
    for name, taverna, wings in corpus.domain_histogram():
        domain = next(d for d in DOMAINS if d.name == name)
        templates = [t for t in corpus.templates.values() if t.domain == domain.slug]
        assert sum(1 for t in templates if t.system == "taverna") == taverna
        assert sum(1 for t in templates if t.system == "wings") == wings
