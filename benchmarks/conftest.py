"""Shared benchmark fixtures.

The corpus and its derived query surfaces are built once per benchmark
session; individual benches measure the *reproduction computations*
(table generation, query evaluation, coverage scans, applications) over
that shared corpus, and write the regenerated tables/figures to
``benchmarks/_artifacts/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.corpus import CorpusBuilder

ARTIFACTS = Path(__file__).parent / "_artifacts"


@pytest.fixture(scope="session")
def corpus():
    return CorpusBuilder(seed=2013).build()


@pytest.fixture(scope="session")
def corpus_dataset(corpus):
    return corpus.dataset()


@pytest.fixture(scope="session")
def taverna_graph(corpus):
    return corpus.system_graph("taverna")


@pytest.fixture(scope="session")
def wings_graph(corpus):
    return corpus.system_graph("wings")


@pytest.fixture(scope="session")
def artifacts_dir():
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def write_artifact(directory: Path, name: str, text: str) -> None:
    (directory / name).write_text(text + ("\n" if not text.endswith("\n") else ""))
