"""Ablation — SPARQL BGP join ordering (DESIGN.md §5).

Compares the selectivity-based plan (default) against evaluating patterns
in written order on a deliberately adversarial query: the most selective
pattern is written *last*, so the naive order explodes the intermediate
binding set while the optimizer starts from the selective pattern.
"""

import pytest

from repro.sparql import QueryEngine

# Written worst-first: the unrestricted type scan precedes the selective
# anchor on one specific run's identifier.
ADVERSARIAL_QUERY = """
PREFIX tavernaprov: <http://ns.taverna.org.uk/2012/tavernaprov/>
SELECT ?process ?input WHERE {
  ?process a wfprov:ProcessRun .
  ?process prov:used ?input .
  ?process wfprov:wasPartOfWorkflowRun ?run .
  ?run dcterms:identifier "t-bioinformatics-01-run1" .
}
"""


@pytest.fixture(scope="module")
def engines(corpus_dataset):
    optimized = QueryEngine(corpus_dataset, optimize_joins=True)
    naive = QueryEngine(corpus_dataset, optimize_joins=False)
    return optimized, naive


def test_results_identical(engines):
    optimized, naive = engines
    fast = {tuple(sorted(r.python().items())) for r in optimized.select(ADVERSARIAL_QUERY)}
    slow = {tuple(sorted(r.python().items())) for r in naive.select(ADVERSARIAL_QUERY)}
    assert fast == slow and fast


def test_optimized_join_order(engines, benchmark):
    optimized, _ = engines
    rows = benchmark(optimized.select, ADVERSARIAL_QUERY)
    assert len(rows) > 0


def test_naive_join_order(engines, benchmark):
    _, naive = engines
    rows = benchmark(naive.select, ADVERSARIAL_QUERY)
    assert len(rows) > 0
