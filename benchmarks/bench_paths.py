"""Path/pattern index benchmarks: deep lineage and frequent patterns.

Measures what the persisted reachability index buys on the two
path-shaped workloads the apps layer runs constantly:

* deep-lineage closure — the transitive ancestor set of every generated
  entity, id-space BFS over the pre-composed derivation DAG vs. the
  decoded graph-API BFS (same graph, index handle withheld).  Rows must
  be identical; the aggregate speedup is the tentpole's performance
  claim (≥5× on this corpus);
* frequent execution patterns — trie-served contiguous-pattern lookups
  over the per-run activity sequences vs. a naive scan of the raw
  sequences.

Numbers land in ``_artifacts/paths_bench.json``; ``bench_report.py``
appends them to the cross-PR trajectory file.
"""

import json
import time

import pytest

from repro.apps.dependencies import DependencyAnalyzer
from repro.pathindex import run_sequences
from repro.prov.constants import PROV
from repro.sparql.paths import PathAlternative, PathClosure, PathInverse, eval_path
from repro.store import QuadStore, StoreDataset, ingest_corpus

from .conftest import write_artifact

_ARTIFACT = {}


@pytest.fixture(scope="module")
def store(tmp_path_factory, corpus):
    from repro.corpus import write_corpus

    corpus_dir = tmp_path_factory.mktemp("bench-paths-corpus")
    write_corpus(corpus, corpus_dir)
    store_path = tmp_path_factory.mktemp("bench-paths") / "store"
    with QuadStore(store_path) as quad_store:
        report = ingest_corpus(quad_store, corpus_dir)
        assert report.path_index == "built"
        yield quad_store


@pytest.fixture(scope="module")
def union(store):
    return StoreDataset(store).union_graph()


@pytest.fixture(scope="module")
def generated_entities(union):
    return sorted(
        {t.subject for t in union.triples(None, PROV.wasGeneratedBy, None)},
        key=lambda term: term.value,
    )


def test_deep_lineage_closure(union, generated_entities, artifacts_dir):
    """Per-query ancestor closure: index vs decoded traversal.

    Each lineage question (``repro-corpus lineage``, ``failure_impact``)
    builds an analyzer and asks for one entity's ancestors.  The decoded
    route must first scan the union graph's ``used``/``wasGeneratedBy``
    adjacency and then BFS with per-step asserted-derivation lookups;
    the persisted index answers straight off the pre-composed DAG.
    """
    sample = generated_entities[::2]

    def ancestors(entity, use_index):
        analyzer = DependencyAnalyzer(union)
        if not use_index:
            analyzer._index = None
        return analyzer.transitive_dependencies(entity)

    start = time.perf_counter()
    decoded_sets = [ancestors(e, use_index=False) for e in sample]
    decoded_s = time.perf_counter() - start

    start = time.perf_counter()
    indexed_sets = [ancestors(e, use_index=True) for e in sample]
    indexed_s = time.perf_counter() - start

    assert indexed_sets == decoded_sets  # identical answers, always
    depth = max(len(s) for s in decoded_sets)
    speedup = decoded_s / indexed_s if indexed_s else float("inf")
    # Acceptance gate: the persisted DAG must beat scan-then-BFS by at
    # least 5× per lineage question on this corpus.
    assert speedup >= 5, f"deep-lineage speedup {speedup:.1f}× < 5×"
    _ARTIFACT["deep_lineage"] = {
        "queries": len(sample),
        "max_ancestors": depth,
        "decoded_s": round(decoded_s, 4),
        "indexed_s": round(indexed_s, 4),
        "speedup": round(speedup, 1),
    }
    write_artifact(artifacts_dir, "paths_bench.json", json.dumps(_ARTIFACT, indent=2))


def test_closure_query_parity_speed(union, artifacts_dir):
    """SPARQL-level lineage closure, index-served vs BFS fallback."""
    path = PathClosure(
        PathAlternative((PROV.used, PathInverse(PROV.wasGeneratedBy))), False
    )

    start = time.perf_counter()
    bfs_rows = list(eval_path(union, path, None, None, use_index=False))
    bfs_s = time.perf_counter() - start

    start = time.perf_counter()
    indexed_rows = list(eval_path(union, path, None, None, use_index=True))
    indexed_s = time.perf_counter() - start

    assert indexed_rows == bfs_rows  # byte-identical, same order
    _ARTIFACT["closure_eval"] = {
        "rows": len(bfs_rows),
        "bfs_s": round(bfs_s, 4),
        "indexed_s": round(indexed_s, 4),
        "speedup": round(bfs_s / indexed_s, 1) if indexed_s else None,
    }
    write_artifact(artifacts_dir, "paths_bench.json", json.dumps(_ARTIFACT, indent=2))


def test_frequent_patterns(store, artifacts_dir):
    """Trie-served pattern queries vs a naive scan of the sequences."""
    index = store.path_index()
    sequences = run_sequences(store)

    start = time.perf_counter()
    patterns = index.frequent_patterns(min_support=3, min_length=2, max_patterns=20)
    trie_mine_s = time.perf_counter() - start
    assert patterns

    def naive_support(pattern):
        pattern = list(pattern)
        width = len(pattern)
        return sum(
            1
            for seq in sequences.values()
            if any(list(seq[i:i + width]) == pattern
                   for i in range(len(seq) - width + 1))
        )

    start = time.perf_counter()
    checked = {tuple(p): naive_support(p) for p, _ in patterns}
    naive_s = time.perf_counter() - start
    assert checked == {tuple(p): support for p, support in patterns}

    start = time.perf_counter()
    for pattern, _ in patterns:
        index.runs_matching(list(pattern))
    trie_lookup_s = time.perf_counter() - start

    _ARTIFACT["frequent_patterns"] = {
        "patterns": len(patterns),
        "top_support": patterns[0][1],
        "runs": len(sequences),
        "trie_mine_s": round(trie_mine_s, 4),
        "trie_lookup_s": round(trie_lookup_s, 5),
        "naive_scan_s": round(naive_s, 4),
    }
    write_artifact(artifacts_dir, "paths_bench.json", json.dumps(_ARTIFACT, indent=2))
