#!/usr/bin/env python3
"""Quickstart: build the PROV-corpus and reproduce the paper's headline facts.

Builds the full corpus (120 workflows, 198 runs, 30 failures) in memory,
prints Table 1 and the Figure 1 histogram, runs exemplar query 1, and shows
a fragment of a real trace — everything the paper's Sections 1–2 describe,
in under a minute.

Run:  python examples/quickstart.py
"""

from repro import CorpusBuilder, CorpusQueries, format_table1
from repro.corpus import DOMAINS


def main() -> None:
    print("Building the Wf4Ever-PROV corpus (seed 2013)...")
    corpus = CorpusBuilder(seed=2013).build()
    stats = corpus.statistics()
    print(f"  -> {stats['workflows']} workflows, {stats['runs']} runs "
          f"({stats['failed_runs']} failed), "
          f"{stats['size_bytes'] / (1024 * 1024):.1f} MB of RDF\n")

    # --- Table 1: the corpus fact sheet -----------------------------------
    print(format_table1(corpus))

    # --- Figure 1: domains of workflows ------------------------------------
    print("\nFigure 1: Domains of workflows  (# = Taverna, * = Wings)")
    width = max(len(d.name) for d in DOMAINS)
    for domain in DOMAINS:
        bar = "#" * domain.taverna_workflows + "*" * domain.wings_workflows
        print(f"  {domain.name.ljust(width)}  {bar}")

    # --- Exemplar query 1 ---------------------------------------------------
    print("\nQuery 1: workflow runs with start and end times (first 5):")
    queries = CorpusQueries(corpus.dataset())
    for row in list(queries.workflow_runs())[:5]:
        run_name = row.run.value.rstrip("/").rsplit("/", 1)[-1]
        print(f"  {run_name:<40} {row.start.lexical}  ->  {row.end.lexical}")

    # --- A real trace --------------------------------------------------------
    trace = corpus.traces[0]
    print(f"\nFirst 12 lines of trace {trace.run_id} ({trace.rdf_format}):")
    for line in trace.text.splitlines()[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
