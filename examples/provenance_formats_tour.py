#!/usr/bin/env python3
"""One trace, every serialization — plus a path-based lineage query.

Takes a single run's provenance from the corpus and shows it in all the
formats the library speaks: Turtle (the corpus's primary format), PROV-N
(the human-readable notation), PROV-XML, the JSON profile, Graphviz DOT —
and then asks a transitive lineage question with a SPARQL property path.

Run:  python examples/provenance_formats_tour.py
"""

from repro import CorpusBuilder
from repro.prov import serialize_provn, serialize_provxml, to_dot
from repro.rdf.jsonld import dumps as jsonld_dumps
from repro.sparql import QueryEngine


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    corpus = CorpusBuilder(seed=2013).build()
    trace = next(t for t in corpus.by_system("taverna")
                 if not t.failed and len(t.result.step_runs) == 3)
    print(f"Trace: {trace.run_id} ({trace.template_name}, "
          f"{len(trace.graph())} triples)")

    banner("1. Turtle (as shipped in the corpus)")
    print("\n".join(trace.text.splitlines()[:16]))
    print("  ...")

    document = trace.document

    banner("2. PROV-N")
    provn = serialize_provn(document)
    print("\n".join(provn.splitlines()[:20]))
    print("  ...")

    banner("3. PROV-XML")
    xml = serialize_provxml(document)
    print("\n".join(xml.splitlines()[:14]))
    print("  ...")

    banner("4. JSON profile")
    json_text = jsonld_dumps(trace.graph())
    print("\n".join(json_text.splitlines()[:14]))
    print("  ...")

    banner("5. Graphviz DOT (render with `dot -Tpng`)")
    dot = to_dot(document, name=trace.run_id)
    print("\n".join(dot.splitlines()[:12]))
    print("  ...")

    banner("6. Transitive lineage via a SPARQL property path")
    engine = QueryEngine(trace.graph())
    rows = engine.select("""
        SELECT DISTINCT ?product ?source WHERE {
          ?product (prov:wasGeneratedBy/prov:used)+ ?source .
          FILTER NOT EXISTS { ?source prov:wasGeneratedBy ?anything }
        }
    """)
    print("data products and the *primary* inputs they derive from:")
    for row in rows:
        product = row.product.value.rstrip("/").rsplit("/", 1)[-1][:20]
        source = row.source.value.rstrip("/").rsplit("/", 1)[-1][:20]
        print(f"  {product}  <=derives-from=  {source}")


if __name__ == "__main__":
    main()
