#!/usr/bin/env python3
"""Serve the corpus over SPARQL and run the six exemplar queries over HTTP.

Section 6 of the paper lists a public SPARQL endpoint as future work; this
example realizes it: the corpus is served on localhost with the SPARQL 1.1
Protocol, and every Section 4 exemplar query is executed through a plain
HTTP client — exactly how a downstream user of the published corpus would
consume it.

Run:  python examples/sparql_endpoint_demo.py
"""

from repro import CorpusBuilder
from repro.endpoint import SparqlClient, SparqlEndpoint
from repro.queries import (
    Q1_WORKFLOW_RUNS,
    q2_runs_of_template,
    q4_process_runs,
    q5_who_executed,
    q6_services_executed,
    taverna_workflow_iri,
    wings_template_iri,
)
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS


def main() -> None:
    corpus = CorpusBuilder(seed=2013).build()
    taverna_trace = next(t for t in corpus.by_system("taverna") if not t.failed)
    wings_trace = next(t for t in corpus.by_system("wings") if not t.failed)
    taverna_template = corpus.templates[taverna_trace.template_id]

    with SparqlEndpoint(corpus.dataset()) as server:
        print(f"Corpus SPARQL endpoint serving at {server.query_url}\n")
        client = SparqlClient(server.query_url)

        rows = client.query(Q1_WORKFLOW_RUNS)
        print(f"Q1 (runs with start/end times) : {len(rows)} runs")

        template_iri = taverna_workflow_iri(
            taverna_template.template_id, taverna_template.name
        )
        rows = client.query(q2_runs_of_template(template_iri))
        print(f"Q2 (runs of {taverna_template.template_id})      : "
              f"total={rows[0]['total']} failed={rows[0].get('failures', 0)}")

        run_iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")
        rows = client.query(q4_process_runs(run_iri))
        processes = {r["process"] for r in rows}
        print(f"Q4 (process runs of one run)   : {len(processes)} process runs, "
              f"timestamps present: {all('start' in r for r in rows)}")

        agents = client.query(q5_who_executed(run_iri))
        print(f"Q5 (who executed, Taverna)     : {agents[0]['agent']}")

        account_iri = OPMW_EXPORT_NS.term(
            f"WorkflowExecutionAccount/{wings_trace.run_id}"
        )
        agents = client.query(q5_who_executed(account_iri))
        print(f"Q5 (who executed, Wings)       : {agents[0]['agent']}")

        services = client.query(q6_services_executed(account_iri))
        print(f"Q6 (services, Wings only)      : "
              f"{[s['component'].rsplit('/', 1)[1] for s in services]}")

        # Q6 against a Taverna run is empty — the paper's restriction.
        services = client.query(q6_services_executed(run_iri))
        print(f"Q6 (services, Taverna run)     : {services} (not recorded by Taverna)")


if __name__ == "__main__":
    main()
