#!/usr/bin/env python3
"""Application (iii): detect workflow decay across repeated runs.

39 of the corpus's templates were executed three times over simulated
months.  Comparing the workflow-level output checksums of successive runs
separates templates whose results are *stable* from those that *decayed*
(their upstream data drifted between runs) — exactly the monitoring use
case of Section 3 of the paper.

Run:  python examples/workflow_decay_monitoring.py
"""

from repro import CorpusBuilder
from repro.apps import DecayDetector


def main() -> None:
    corpus = CorpusBuilder(seed=2013).build()
    detector = DecayDetector(corpus)

    reports = detector.detect_all()
    decayed = [r for r in reports if r.decayed]
    stable = [r for r in reports if r.stable]
    print(f"Templates with repeated runs : {len(reports)}")
    print(f"  stable                     : {len(stable)}")
    print(f"  decayed                    : {len(decayed)}\n")

    print("Decayed templates (results changed between runs):")
    for report in decayed[:8]:
        print(f"  {report.summary()}")

    print("\nOne decayed template in detail:")
    detail = detector.analyze_template(decayed[0].template_id)
    for snapshot in detail.snapshots:
        ports = ", ".join(f"{p}={c[:10]}" for p, c in sorted(snapshot.outputs.items()))
        print(f"  {snapshot.run_id} [{snapshot.status}] {ports or '(no outputs)'}")

    print("\nStable templates (identical results across runs):")
    for report in stable[:5]:
        print(f"  {report.summary()}")


if __name__ == "__main__":
    main()
