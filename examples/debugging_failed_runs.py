#!/usr/bin/env python3
"""Application (ii): debug the corpus's 30 failed workflow runs.

The paper keeps failed-run traces precisely because they support failure
analysis: "identify the processes that are responsible for workflow
failure and detect the steps in the workflow that were affected."

This example debugs every failed run in the corpus from its RDF alone:
for each, it names the responsible process, the failure cause, and the
planned steps the failure prevented from executing — then shows the
repair-by-substitution suggestion for the runs that have an earlier
successful sibling.

Run:  python examples/debugging_failed_runs.py
"""

from repro import CorpusBuilder
from repro.apps import DecayDetector, RunDebugger
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS


def run_iri_of(trace):
    if trace.system == "taverna":
        return TAVERNA_RUN_NS.term(f"{trace.run_id}/")
    return OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{trace.run_id}")


def main() -> None:
    corpus = CorpusBuilder(seed=2013).build()
    failed = corpus.failed_traces()
    print(f"The corpus contains {len(failed)} failed runs "
          f"out of {len(corpus.traces)}.\n")

    causes = {}
    for trace in failed:
        causes.setdefault(trace.failure_cause, []).append(trace)
    for cause, traces in sorted(causes.items()):
        print(f"{cause}: {len(traces)} runs")
    print()

    # Debug a handful in detail (one per cause, one per system).
    shown = set()
    for trace in failed:
        key = (trace.system, trace.failure_cause)
        if key in shown:
            continue
        shown.add(key)
        report = RunDebugger(trace.graph()).debug(run_iri_of(trace))
        print(f"[{trace.system}] {trace.run_id}")
        print(f"  cause       : {', '.join(report.failure_causes)}")
        responsible = [p.value.rstrip('/').rsplit('/', 1)[-1]
                       for p in report.responsible_processes]
        print(f"  responsible : {', '.join(responsible)}")
        print(f"  executed    : {', '.join(report.executed_steps) or '(none)'}")
        print(f"  affected    : {', '.join(report.affected_steps) or '(none)'}")
        print()

    # Repair: failed runs of multi-run templates can borrow past results.
    print("Repair suggestions (failed runs with an earlier successful run):")
    detector = DecayDetector(corpus)
    for trace in failed:
        suggestion = detector.repair_candidates(trace.run_id)
        if suggestion is not None:
            ports = ", ".join(sorted(suggestion.artifacts))
            print(f"  {trace.run_id}: reuse [{ports}] from {suggestion.donor_run_id}")


if __name__ == "__main__":
    main()
